//===- tests/test_pipeline.cpp - PassManager / PipelinePlan API tests -------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the composable pipeline API (driver/PassManager.h):
///
///   * the pass registry (built-in names, unknown-pass diagnostics),
///   * the pipeline-spec parser (round-trip canonicalization, nested
///     checkopt knobs, malformed-spec diagnostics),
///   * wrapper/plan equivalence — the same source and configuration must
///     produce identical instruction counts and check statistics through
///     the legacy BuildOptions wrapper and a hand-built PipelinePlan, and
///     the spec string "optimize,softbound,checkopt" must reproduce the
///     default pipeline exactly on the bench corpus,
///   * the SafeElision pass surfaced through checkopt(safe)/safe-elision,
///   * unified PipelineStats ownership and per-pass timing records.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

unsigned countInstructions(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      N += static_cast<unsigned>(
          std::distance(BB->begin(), BB->end()));
  return N;
}

unsigned countChecks(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB)
        if (isa<SpatialCheckInst>(I.get()))
          ++N;
  return N;
}

void expectSameCheckOptStats(const CheckOptStats &A, const CheckOptStats &B) {
  EXPECT_EQ(A.ChecksBefore, B.ChecksBefore);
  EXPECT_EQ(A.ChecksAfter, B.ChecksAfter);
  EXPECT_EQ(A.DominatedEliminated, B.DominatedEliminated);
  EXPECT_EQ(A.RangeEliminated, B.RangeEliminated);
  EXPECT_EQ(A.FuncPtrEliminated, B.FuncPtrEliminated);
  EXPECT_EQ(A.SafeChecksElided, B.SafeChecksElided);
  EXPECT_EQ(A.LoopChecksHoisted, B.LoopChecksHoisted);
  EXPECT_EQ(A.HoistedChecksInserted, B.HoistedChecksInserted);
  EXPECT_EQ(A.InterProcChecksElided, B.InterProcChecksElided);
  EXPECT_EQ(A.InterProcCalleeElided, B.InterProcCalleeElided);
  EXPECT_EQ(A.InterProcCallerElided, B.InterProcCallerElided);
  EXPECT_EQ(A.InterProcRangeElided, B.InterProcRangeElided);
  EXPECT_EQ(A.InterProcSunkElided, B.InterProcSunkElided);
}

void expectSameSoftBoundStats(const SoftBoundStats &A,
                              const SoftBoundStats &B) {
  EXPECT_EQ(A.FunctionsTransformed, B.FunctionsTransformed);
  EXPECT_EQ(A.ChecksInserted, B.ChecksInserted);
  EXPECT_EQ(A.FuncPtrChecksInserted, B.FuncPtrChecksInserted);
  EXPECT_EQ(A.MetaLoadsInserted, B.MetaLoadsInserted);
  EXPECT_EQ(A.MetaStoresInserted, B.MetaStoresInserted);
  EXPECT_EQ(A.BoundsShrunk, B.BoundsShrunk);
  EXPECT_EQ(A.CallsRewritten, B.CallsRewritten);
  EXPECT_EQ(A.ChecksEliminated, B.ChecksEliminated);
  EXPECT_EQ(A.ChecksElidedStatically, B.ChecksElidedStatically);
}

const char *LoopSource = "int main() {\n"
                         "  int* p = (int*)malloc(64);\n"
                         "  int s = 0;\n"
                         "  for (int i = 0; i < 16; i++) { p[i] = i; s += p[i]; }\n"
                         "  return s;\n"
                         "}";

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(PassRegistry, BuiltinsAreRegistered) {
  auto &R = PassRegistry::global();
  for (const char *Name :
       {"optimize", "softbound", "reoptimize", "checkopt", "safe-elision"}) {
    const PassRegistry::Entry *E = R.lookup(Name);
    ASSERT_NE(E, nullptr) << Name;
    EXPECT_FALSE(E->Description.empty()) << Name;
  }
  EXPECT_EQ(R.names().size(), 5u);
}

TEST(PassRegistry, UnknownPassDiagnosticNamesKnownPasses) {
  std::string Err;
  auto P = PassRegistry::global().create("chekopt", {}, Err);
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Err.find("unknown pass 'chekopt'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("checkopt"), std::string::npos)
      << "diagnostic should list the known passes: " << Err;
}

TEST(PassRegistry, DuplicateRegistrationRejected) {
  EXPECT_FALSE(PassRegistry::global().add(
      "optimize", "dup", {},
      [](const std::vector<std::string> &, std::string &)
          -> std::shared_ptr<const ModulePass> { return nullptr; }));
}

//===----------------------------------------------------------------------===//
// Spec parser: round-trip and canonicalization
//===----------------------------------------------------------------------===//

TEST(PipelineSpec, RoundTripsCanonicalForms) {
  // Left: input spec. Right: expected canonical spec() output.
  const std::pair<const char *, const char *> Cases[] = {
      {"optimize,softbound,checkopt", "optimize,softbound,checkopt"},
      {" optimize , softbound( store-only , no-shrink ) ",
       "optimize,softbound(store-only,no-shrink)"},
      // The default sub-pass set now includes interproc, runtime-limit,
      // and partition; an explicit knob list enables exactly what it
      // names, so any older default spells itself out — in particular the
      // pre-partition default, which is the no-partition A/B baseline.
      {"checkopt(redundant,range,hoist,runtime-limit,interproc,partition)",
       "checkopt"},
      {"checkopt(redundant,range,hoist,runtime-limit,interproc)",
       "checkopt(redundant,range,hoist,runtime-limit,interproc)"},
      {"checkopt(redundant,range,hoist,interproc)",
       "checkopt(redundant,range,hoist,interproc)"},
      {"checkopt(partition)", "checkopt(partition)"},
      // runtime-limit implies (and canonically spells out) hoist.
      {"checkopt(runtime-limit)", "checkopt(hoist,runtime-limit)"},
      {"checkopt(redundant,range,hoist)", "checkopt(redundant,range,hoist)"},
      {"checkopt()", "checkopt"},
      {"checkopt(range)", "checkopt(range)"},
      {"checkopt(interproc)", "checkopt(interproc)"},
      {"checkopt(interproc,hoist,redundant)",
       "checkopt(redundant,hoist,interproc)"},
      {"checkopt(hoist,redundant)", "checkopt(redundant,hoist)"},
      {"checkopt(off)", "checkopt(off)"},
      {"checkopt(none)", "checkopt(none)"},
      {"checkopt(redundant,range,hoist,interproc,safe)",
       "checkopt(redundant,range,hoist,interproc,safe)"},
      {"softbound(no-reopt),reoptimize", "softbound(no-reopt),reoptimize"},
      {"optimize,softbound,safe-elision", "optimize,softbound,safe-elision"},
  };
  for (const auto &[Input, Canonical] : Cases) {
    PipelinePlan Plan;
    std::string Err;
    ASSERT_TRUE(Plan.appendSpec(Input, &Err)) << Input << ": " << Err;
    EXPECT_EQ(Plan.spec(), Canonical) << Input;
    // Re-parsing the canonical form is a fixpoint.
    PipelinePlan Again;
    ASSERT_TRUE(Again.appendSpec(Plan.spec(), &Err)) << Err;
    EXPECT_EQ(Again.spec(), Canonical);
  }
}

TEST(PipelineSpec, DiagnosesMalformedSpecs) {
  const std::pair<const char *, const char *> Cases[] = {
      {"optimize,chekopt", "unknown pass 'chekopt'"},
      {"checkopt(rnge)", "unknown knob 'rnge'"},
      {"optimize(fast)", "takes no knobs"},
      {"checkopt(range", "unmatched '('"},
      {"checkopt)range(", "unmatched ')'"},
      {"checkopt(off,range)", "cannot be combined"},
      {"optimize,,softbound", "empty pass name"},
      {"checkopt(range,)", "empty knob"},
      {"checkopt(range)x", "trailing text"},
  };
  for (const auto &[Spec, Needle] : Cases) {
    PipelinePlan Plan;
    Plan.optimize();
    std::string Err;
    EXPECT_FALSE(Plan.appendSpec(Spec, &Err)) << Spec;
    EXPECT_NE(Err.find(Needle), std::string::npos)
        << Spec << " -> " << Err;
    EXPECT_EQ(Plan.size(), 1u) << "failed appendSpec must not modify the plan";
  }
}

TEST(PipelinePlan, MisuseSurfacesAsBuildErrors) {
  PipelineResult NoSource = PipelinePlan().optimize().build();
  EXPECT_FALSE(NoSource.ok());
  EXPECT_NE(NoSource.errorText().find("no frontend source"),
            std::string::npos);

  PipelineResult BadPass =
      PipelinePlan().frontend("int main() { return 0; }").pass("nope").build();
  EXPECT_FALSE(BadPass.ok());
  EXPECT_NE(BadPass.errorText().find("unknown pass 'nope'"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Nested checkopt knobs drive the right sub-passes
//===----------------------------------------------------------------------===//

TEST(PipelineSpec, CheckOptKnobsSelectSubPasses) {
  PipelinePlan Hoist;
  std::string Err;
  ASSERT_TRUE(Hoist.appendSpec("optimize,softbound,checkopt(hoist)", &Err))
      << Err;
  PipelineResult PH = Hoist.frontend(LoopSource).build();
  ASSERT_TRUE(PH.ok()) << PH.errorText();
  EXPECT_GE(PH.Pipeline.CheckOpt.LoopChecksHoisted, 1u);
  EXPECT_EQ(PH.Pipeline.CheckOpt.DominatedEliminated, 0u);
  EXPECT_EQ(PH.Pipeline.CheckOpt.RangeEliminated, 0u);
  EXPECT_EQ(PH.Pipeline.CheckOpt.SafeChecksElided, 0u);

  PipelinePlan None;
  ASSERT_TRUE(None.appendSpec("optimize,softbound,checkopt(off)", &Err));
  PipelineResult PN = None.frontend(LoopSource).build();
  ASSERT_TRUE(PN.ok()) << PN.errorText();
  EXPECT_EQ(PN.Pipeline.CheckOpt.ChecksBefore, 0u)
      << "checkopt(off) must not even count checks";
}

TEST(PipelineSpec, InterProcKnobSelectsOnlyInterProc) {
  // A caller-checked global access re-checked by a private callee: only
  // the interproc sub-pass may touch it.
  const char *Src = "int tbl[32];\n"
                    "int peek(int k) { return tbl[k]; }\n"
                    "int main() { tbl[5] = 9; return peek(5); }";
  PipelinePlan Only;
  std::string Err;
  ASSERT_TRUE(Only.appendSpec("optimize,softbound,checkopt(interproc)", &Err))
      << Err;
  PipelineResult P = Only.frontend(Src).build();
  ASSERT_TRUE(P.ok()) << P.errorText();
  EXPECT_GT(P.Pipeline.CheckOpt.InterProcChecksElided, 0u);
  EXPECT_EQ(P.Pipeline.CheckOpt.DominatedEliminated, 0u);
  EXPECT_EQ(P.Pipeline.CheckOpt.RangeEliminated, 0u);
  EXPECT_EQ(P.Pipeline.CheckOpt.LoopChecksHoisted, 0u);
  EXPECT_EQ(P.Pipeline.CheckOpt.SafeChecksElided, 0u);
  RunResult R = runSession(P).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 9);

  // And the complementary set leaves interproc off.
  PipelinePlan Rest;
  ASSERT_TRUE(
      Rest.appendSpec("optimize,softbound,checkopt(redundant,range,hoist)",
                      &Err))
      << Err;
  PipelineResult PR = Rest.frontend(Src).build();
  ASSERT_TRUE(PR.ok()) << PR.errorText();
  EXPECT_EQ(PR.Pipeline.CheckOpt.InterProcChecksElided, 0u);
}

//===----------------------------------------------------------------------===//
// Wrapper/plan equivalence
//===----------------------------------------------------------------------===//

/// Same source + configuration through the legacy wrapper and through a
/// hand-built fluent plan: identical modules (instruction/check counts),
/// identical stats, identical dynamic behaviour.
TEST(PipelineEquivalence, WrapperAndFluentPlanAgree) {
  struct Case {
    SoftBoundConfig SB;
    CheckOptConfig CO;
  };
  Case Cases[3];
  Cases[1].SB.Mode = CheckMode::StoreOnly;
  Cases[1].SB.ReoptimizeAfter = false;
  Cases[2].CO.HoistLoopChecks = false;
  Cases[2].SB.ShrinkBounds = false;

  for (const Case &C : Cases) {
    BuildOptions Opts;
    Opts.Instrument = true;
    Opts.SB = C.SB;
    Opts.CheckOpt = C.CO;
    BuildResult Legacy = buildProgram(LoopSource, Opts);
    BuildResult Fluent = PipelinePlan()
                             .frontend(LoopSource)
                             .optimize()
                             .softbound(C.SB)
                             .checkOpt(C.CO)
                             .build();
    ASSERT_TRUE(Legacy.ok()) << Legacy.errorText();
    ASSERT_TRUE(Fluent.ok()) << Fluent.errorText();
    EXPECT_EQ(countInstructions(*Legacy.M), countInstructions(*Fluent.M));
    EXPECT_EQ(countChecks(*Legacy.M), countChecks(*Fluent.M));
    expectSameSoftBoundStats(Legacy.Stats, Fluent.Stats);
    expectSameCheckOptStats(Legacy.Pipeline.CheckOpt,
                            Fluent.Pipeline.CheckOpt);

    RunResult RL = runSession(Legacy).Combined;
    RunResult RF = runSession(Fluent).Combined;
    EXPECT_EQ(RL.ExitCode, RF.ExitCode);
    EXPECT_EQ(RL.Counters.Checks, RF.Counters.Checks);
    EXPECT_EQ(RL.Counters.Cycles, RF.Counters.Cycles);
  }
}

/// The acceptance criterion: the spec string "optimize,softbound,checkopt"
/// reproduces today's default pipeline stats exactly on the bench corpus.
TEST(PipelineEquivalence, DefaultSpecMatchesLegacyDefaultsOnBenchCorpus) {
  BuildOptions Defaults;
  Defaults.Instrument = true;
  unsigned Covered = 0;
  for (const auto &W : benchmarkSuite()) {
    if (Covered == 4)
      break; // A representative prefix keeps the test fast.
    ++Covered;
    BuildResult Legacy = buildProgram(W.Source, Defaults);
    PipelinePlan Plan;
    std::string Err;
    ASSERT_TRUE(Plan.appendSpec("optimize,softbound,checkopt", &Err)) << Err;
    BuildResult Spec = Plan.frontend(W.Source).build();
    ASSERT_TRUE(Legacy.ok() && Spec.ok()) << W.Name;
    EXPECT_EQ(countInstructions(*Legacy.M), countInstructions(*Spec.M))
        << W.Name;
    expectSameSoftBoundStats(Legacy.Stats, Spec.Stats);
    expectSameCheckOptStats(Legacy.Pipeline.CheckOpt, Spec.Pipeline.CheckOpt);

    RunResult RL = runSession(Legacy).Combined;
    RunResult RS = runSession(Spec).Combined;
    EXPECT_EQ(RL.ExitCode, RS.ExitCode) << W.Name;
    EXPECT_EQ(RL.Output, RS.Output) << W.Name;
    EXPECT_EQ(RL.Counters.Checks, RS.Counters.Checks) << W.Name;
    EXPECT_EQ(RL.Counters.Cycles, RS.Counters.Cycles) << W.Name;
  }
  EXPECT_GE(Covered, 3u);
}

//===----------------------------------------------------------------------===//
// SafeElision through the pipeline
//===----------------------------------------------------------------------===//

TEST(SafeElision, ElidesProvableChecksAndKeepsViolations) {
  // In-bounds constant accesses into a global: provably safe, elided.
  const char *Safe = "int g[4];\n"
                     "int main() { g[2] = 5; return g[2]; }";
  PipelinePlan Plan;
  std::string Err;
  ASSERT_TRUE(
      Plan.appendSpec("optimize,softbound(no-reopt),safe-elision", &Err))
      << Err;
  PipelineResult P = Plan.frontend(Safe).build();
  ASSERT_TRUE(P.ok()) << P.errorText();
  EXPECT_GE(P.Pipeline.CheckOpt.SafeChecksElided, 1u);
  RunResult R = runSession(P).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 5);

  // A constant out-of-bounds store is not provable: the check stays and
  // still traps.
  const char *Bad = "int g[4];\n"
                    "int main() { g[7] = 1; return 0; }";
  PipelinePlan BadPlan;
  ASSERT_TRUE(
      BadPlan.appendSpec("optimize,softbound(no-reopt),safe-elision", &Err));
  RunResult RB = runSession(BadPlan.frontend(Bad)).Combined;
  EXPECT_EQ(RB.Trap, TrapKind::SpatialViolation) << trapName(RB.Trap);
}

TEST(SafeElision, SubObjectTradeOffMatchesLegacyFlagExactly) {
  // The documented §6.5 trade-off, pinned down: the elision proof judges
  // the leading pointer-arithmetic step against the whole object, so a
  // constant sub-object overflow through the decayed field pointer
  // (s.buf[9] inside struct S) loses its shrunk-bounds check. The folded
  // sub-pass must reproduce the pre-fold inline proof bit-for-bit: same
  // elision count, same (missed) outcome, same corrupted result — while
  // the default pipeline (elision off) still catches the overflow.
  const char *Src = "struct S { char buf[8]; long count; };\n"
                    "int main() {\n"
                    "  struct S s;\n"
                    "  s.count = 7;\n"
                    "  s.buf[9] = 1;\n"
                    "  return (int)s.count;\n"
                    "}";
  BuildOptions Legacy;
  Legacy.Instrument = true;
  Legacy.SB.ElideSafePointerChecks = true;
  BuildResult L = buildProgram(Src, Legacy);
  ASSERT_TRUE(L.ok()) << L.errorText();

  PipelinePlan Plan;
  std::string Err;
  ASSERT_TRUE(
      Plan.appendSpec("optimize,softbound(no-reopt),safe-elision", &Err))
      << Err;
  BuildResult N = Plan.frontend(Src).build();
  ASSERT_TRUE(N.ok()) << N.errorText();

  EXPECT_EQ(L.Stats.ChecksElidedStatically,
            N.Pipeline.CheckOpt.SafeChecksElided);
  EXPECT_GE(N.Pipeline.CheckOpt.SafeChecksElided, 3u);

  RunResult RL = runSession(L).Combined;
  RunResult RN = runSession(N).Combined;
  EXPECT_EQ(RL.Trap, TrapKind::None) << trapName(RL.Trap);
  EXPECT_EQ(RN.Trap, RL.Trap);
  EXPECT_EQ(RN.ExitCode, RL.ExitCode); // Both see the corrupted count.

  // Without elision, SoftBound's shrunk field bounds catch the write.
  BuildOptions Full;
  Full.Instrument = true;
  RunResult RF = runSession(planFromBuildOptions(Src, Full)).Combined;
  EXPECT_EQ(RF.Trap, TrapKind::SpatialViolation) << trapName(RF.Trap);
}

TEST(SafeElision, LegacyFlagAndCheckOptKnobAgree) {
  // The deprecated SoftBoundConfig flag and checkopt(safe) both route into
  // the SafeElision sub-pass and report through the same counters.
  BuildOptions Legacy;
  Legacy.Instrument = true;
  Legacy.SB.ElideSafePointerChecks = true;
  BuildResult L = buildProgram(LoopSource, Legacy);
  ASSERT_TRUE(L.ok()) << L.errorText();
  EXPECT_EQ(L.Stats.ChecksElidedStatically,
            L.Pipeline.CheckOpt.SafeChecksElided);

  CheckOptConfig Safe; // Defaults plus the elision sub-pass.
  Safe.ElideSafeChecks = true;
  BuildResult N = PipelinePlan()
                      .frontend(LoopSource)
                      .optimize()
                      .softbound()
                      .checkOpt(Safe)
                      .build();
  ASSERT_TRUE(N.ok()) << N.errorText();

  RunResult RL = runSession(L).Combined;
  RunResult RN = runSession(N).Combined;
  ASSERT_TRUE(RL.ok() && RN.ok());
  EXPECT_EQ(RL.ExitCode, RN.ExitCode);
}

//===----------------------------------------------------------------------===//
// Unified stats and timings
//===----------------------------------------------------------------------===//

TEST(PipelineStatsOwnership, SingleOwnerWithLegacyAliases) {
  BuildOptions Opts;
  Opts.Instrument = true;
  BuildResult Prog = buildProgram(LoopSource, Opts);
  ASSERT_TRUE(Prog.ok());

  // PipelineStats.CheckOpt owns the numbers; the legacy views mirror it.
  expectSameCheckOptStats(Prog.Pipeline.CheckOpt, Prog.Stats.CheckOpt);
  EXPECT_GT(Prog.Pipeline.CheckOpt.ChecksBefore, 0u);
  EXPECT_EQ(Prog.Pipeline.SB.CheckOpt.ChecksBefore, 0u)
      << "the nested legacy field inside PipelineStats.SB stays zero";
  EXPECT_EQ(Prog.Stats.ChecksInserted, Prog.Pipeline.SB.ChecksInserted);
}

TEST(PipelineTimings, EveryPassIsRecordedInOrder) {
  BuildResult Prog = PipelinePlan()
                         .frontend(LoopSource)
                         .optimize()
                         .softbound()
                         .checkOpt()
                         .build();
  ASSERT_TRUE(Prog.ok());
  ASSERT_EQ(Prog.Pipeline.Passes.size(), 3u);
  EXPECT_EQ(Prog.Pipeline.Passes[0].Pass, "optimize");
  EXPECT_EQ(Prog.Pipeline.Passes[1].Pass, "softbound");
  EXPECT_EQ(Prog.Pipeline.Passes[2].Pass, "checkopt");
  for (const auto &T : Prog.Pipeline.Passes)
    EXPECT_GE(T.Millis, 0.0);
  EXPECT_GE(Prog.Pipeline.totalMillis(), 0.0);
}

} // namespace
