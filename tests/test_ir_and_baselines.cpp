//===- tests/test_ir_and_baselines.cpp - IR + baseline unit tests ----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the IR substrate (type layout, verifier diagnostics)
/// and the baseline checkers (splay tree vs std::map oracle, red-zone
/// detection profile).
///
//===----------------------------------------------------------------------===//

#include "baselines/MemcheckLite.h"
#include "baselines/ObjectTableChecker.h"
#include "baselines/SplayTree.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <map>

using namespace softbound;

namespace {

//===----------------------------------------------------------------------===//
// Type layout
//===----------------------------------------------------------------------===//

TEST(TypeLayout, CLayoutRules) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.i8()->sizeInBytes(), 1u);
  EXPECT_EQ(Ctx.i32()->sizeInBytes(), 4u);
  EXPECT_EQ(Ctx.ptrTo(Ctx.i32())->sizeInBytes(), 8u);
  EXPECT_EQ(Ctx.arrayOf(Ctx.i32(), 10)->sizeInBytes(), 40u);

  // struct { char c; long l; int i; } -> offsets 0, 8, 16; size 24.
  StructType *S = Ctx.createStruct("s");
  S->setBody({Ctx.i8(), Ctx.i64(), Ctx.i32()}, {"c", "l", "i"},
             /*IsUnion=*/false);
  EXPECT_EQ(S->fieldOffset(0), 0u);
  EXPECT_EQ(S->fieldOffset(1), 8u);
  EXPECT_EQ(S->fieldOffset(2), 16u);
  EXPECT_EQ(S->structSize(), 24u);
  EXPECT_EQ(S->structAlign(), 8u);

  // Union: size of the largest member.
  StructType *U = Ctx.createStruct("u");
  U->setBody({Ctx.i8(), Ctx.i64()}, {"c", "l"}, /*IsUnion=*/true);
  EXPECT_EQ(U->fieldOffset(1), 0u);
  EXPECT_EQ(U->structSize(), 8u);
}

TEST(TypeLayout, InterningGivesPointerEquality) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.ptrTo(Ctx.i32()), Ctx.ptrTo(Ctx.i32()));
  EXPECT_EQ(Ctx.arrayOf(Ctx.i8(), 4), Ctx.arrayOf(Ctx.i8(), 4));
  EXPECT_NE(Ctx.arrayOf(Ctx.i8(), 4), Ctx.arrayOf(Ctx.i8(), 5));
  EXPECT_EQ(Ctx.funcTy(Ctx.i32(), {Ctx.i64()}),
            Ctx.funcTy(Ctx.i32(), {Ctx.i64()}));
}

//===----------------------------------------------------------------------===//
// Verifier diagnostics
//===----------------------------------------------------------------------===//

TEST(Verifier, CatchesMissingTerminator) {
  Module M;
  Function *F =
      M.createFunction("f", M.ctx().funcTy(M.ctx().voidTy(), {}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.makeBounds(M.constI64(0), M.constI64(0)); // No terminator.
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesTypeMismatches) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.i32(), {}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.ret(M.constI64(0)); // i64 returned from an i32 function.
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("return type"), std::string::npos);
}

TEST(Verifier, CatchesBadSpatialCheckOperands) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(),
                                                 {Ctx.ptrTo(Ctx.i8())}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  // Bounds operand is an integer, not a bounds value.
  BB->append(std::make_unique<SpatialCheckInst>(
      Ctx.voidTy(), F->arg(0), M.constI64(5), 8, true));
  B.ret();
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("bounds"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Splay tree vs std::map oracle
//===----------------------------------------------------------------------===//

TEST(SplayTree, MatchesMapOracle) {
  IntervalSplayTree T;
  std::map<uint64_t, uint64_t> Oracle;
  RNG R(99);
  for (int Op = 0; Op < 10000; ++Op) {
    switch (R.below(3)) {
    case 0: { // Insert a fresh disjoint interval.
      uint64_t Start = (R.below(1 << 16)) << 8;
      if (Oracle.count(Start))
        break;
      // Ensure disjointness with the oracle.
      auto It = Oracle.upper_bound(Start);
      if (It != Oracle.end() && Start + 64 > It->first)
        break;
      if (It != Oracle.begin()) {
        auto Prev = std::prev(It);
        if (Prev->first + Prev->second > Start)
          break;
      }
      T.insert(Start, 64);
      Oracle[Start] = 64;
      break;
    }
    case 1: { // Erase a random known interval.
      if (Oracle.empty())
        break;
      auto It = Oracle.begin();
      std::advance(It, R.below(Oracle.size()));
      EXPECT_EQ(T.erase(It->first), It->second);
      Oracle.erase(It);
      break;
    }
    default: { // Query a random address.
      uint64_t Addr = (R.below(1 << 16)) << 8 | R.below(256);
      uint64_t Start, Size, Comparisons = 0;
      bool Found = T.find(Addr, Start, Size, Comparisons);
      auto It = Oracle.upper_bound(Addr);
      bool OFound = false;
      if (It != Oracle.begin()) {
        --It;
        OFound = Addr >= It->first && Addr < It->first + It->second;
      }
      ASSERT_EQ(Found, OFound) << "op " << Op;
      if (Found)
        ASSERT_EQ(Start, It->first);
      break;
    }
    }
  }
  EXPECT_EQ(T.size(), Oracle.size());
}

//===----------------------------------------------------------------------===//
// Baseline detection profiles
//===----------------------------------------------------------------------===//

TEST(MemcheckLite, HeapOnlyProfile) {
  MemcheckLite M;
  M.onAlloc(ObjectRegion::Heap, 0x2000'0000, 32);
  // Heap in-bounds / out-of-bounds.
  EXPECT_TRUE(M.checkAccess(0x2000'0000 + 31, 1, true));
  EXPECT_FALSE(M.checkAccess(0x2000'0000 + 32, 1, true));
  // Stack and global addresses are never flagged.
  EXPECT_TRUE(M.checkAccess(0x7000'0000, 8, true));
  EXPECT_TRUE(M.checkAccess(0x1000'0000, 8, true));
  // Freed memory is flagged.
  M.onFree(ObjectRegion::Heap, 0x2000'0000, 32);
  EXPECT_FALSE(M.checkAccess(0x2000'0000, 1, false));
}

TEST(ObjectTableChecker, ObjectGranularityProfile) {
  ObjectTableChecker C;
  C.onAlloc(ObjectRegion::Global, 0x1000, 24); // A struct-sized object.
  // Anywhere inside the object passes — including "sub-object overflow"
  // offsets; that is precisely the §2.1 incompleteness.
  EXPECT_TRUE(C.checkAccess(0x1000 + 20, 4, true));
  // Past the object fails.
  EXPECT_FALSE(C.checkAccess(0x1000 + 24, 1, true));
  // Stack objects are tracked too (unlike the heap-only red zone).
  C.onAlloc(ObjectRegion::Stack, 0x7000'0000, 16);
  EXPECT_TRUE(C.checkAccess(0x7000'0008, 8, true));
  C.onFree(ObjectRegion::Stack, 0x7000'0000, 16);
  EXPECT_FALSE(C.checkAccess(0x7000'0008, 8, true));
}

TEST(ObjectTableChecker, DerivationCheckingMode) {
  ObjectTableChecker C(/*CheckDerivations=*/true);
  C.onAlloc(ObjectRegion::Heap, 0x2000, 64);
  EXPECT_TRUE(C.checkDerive(0x2000, 0x2000 + 32)); // Inside.
  EXPECT_TRUE(C.checkDerive(0x2000, 0x2000 + 64)); // One past: legal C.
  EXPECT_FALSE(C.checkDerive(0x2000, 0x2000 + 65)); // Beyond.
}

} // namespace
