//===- tests/test_attacks.cpp - Table 3 attack suite ------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3: each of the 18 attacks must land on the unprotected VM
/// (hijacked control flow or payload execution) and be stopped by
/// SoftBound in BOTH full and store-only checking modes — every attack
/// requires at least one out-of-bounds write.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

class AttackSuite : public ::testing::TestWithParam<int> {};

TEST_P(AttackSuite, LandsWithoutProtection) {
  const AttackCase &A = attackSuite()[GetParam()];
  RunResult R =
      runSession(planFromBuildOptions(A.Source, BuildOptions{})).Combined;
  EXPECT_TRUE(R.attackLanded())
      << A.Name << ": trap=" << trapName(R.Trap) << " exit=" << R.ExitCode
      << " msg=" << R.Message;
}

TEST_P(AttackSuite, DetectedByFullChecking) {
  const AttackCase &A = attackSuite()[GetParam()];
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::Full;
  RunResult R = runSession(planFromBuildOptions(A.Source, B)).Combined;
  EXPECT_TRUE(R.violationDetected())
      << A.Name << ": trap=" << trapName(R.Trap) << " exit=" << R.ExitCode;
  EXPECT_FALSE(R.attackLanded()) << A.Name;
}

TEST_P(AttackSuite, DetectedByStoreOnlyChecking) {
  const AttackCase &A = attackSuite()[GetParam()];
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::StoreOnly;
  RunResult R = runSession(planFromBuildOptions(A.Source, B)).Combined;
  EXPECT_TRUE(R.violationDetected())
      << A.Name << ": trap=" << trapName(R.Trap) << " exit=" << R.ExitCode;
  EXPECT_FALSE(R.attackLanded()) << A.Name;
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AttackSuite, ::testing::Range(0, 18),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           std::string N =
                               attackSuite()[Info.param].Name;
                           for (auto &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(AttackSuiteMeta, CoversTable3Matrix) {
  // 6 direct-stack + 2 direct-heap/data + 6 indirect-stack +
  // 4 indirect-heap/data = 18 rows, as in Table 3.
  ASSERT_EQ(attackSuite().size(), 18u);
  int DirectStack = 0, DirectOther = 0, IndirectStack = 0, IndirectOther = 0;
  for (const auto &A : attackSuite()) {
    bool Direct = A.Technique == "direct overflow";
    bool Stack = A.Location == "stack";
    if (Direct && Stack)
      ++DirectStack;
    else if (Direct)
      ++DirectOther;
    else if (Stack)
      ++IndirectStack;
    else
      ++IndirectOther;
  }
  EXPECT_EQ(DirectStack, 6);
  EXPECT_EQ(DirectOther, 2);
  EXPECT_EQ(IndirectStack, 6);
  EXPECT_EQ(IndirectOther, 4);
}

} // namespace
