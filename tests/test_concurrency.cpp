//===- tests/test_concurrency.cpp - sharded facilities, multi-lane VM ------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Facility API v2 concurrency coverage (docs/runtime.md):
///
///  - range operations on a Sharded facility agree with a SingleThread
///    oracle even when the range spans several 2^ShardStripeLog2-byte
///    stripes (clearRange / copyRange chunk per stripe);
///  - a multi-threaded update/lookup hammer loses no slots and the
///    per-shard statistics add up, including lock-acquire counts;
///  - a 4-lane runSession over the full Table 3 attack suite and the
///    Table 4 BugBench kernels misses nothing in any lane;
///  - a 1-lane session is counter-identical to the classic runProgram
///    path the gated baselines were recorded against;
///  - multi-lane sessions surface contention accounting and merge lane
///    outputs deterministically;
///  - the LockFreeRead model (docs/runtime.md "Lock-free reads"): a
///    writer-hammer seqlock stress where lookups racing updates must
///    return the old pair or the new pair, never a mix; read-only
///    hammers whose lock-acquire counter stays flat (zero mutex
///    acquisitions on the read path); seqlock read/retry accounting and
///    its contentionSimCost() pricing; and the 4-lane attack + BugBench
///    sweeps repeated under LockFreeRead with zero missed detections.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

using namespace softbound;

namespace {

constexpr uint64_t Stripe = 1ULL << ShardStripeLog2;

//===----------------------------------------------------------------------===//
// Stripe-spanning range operations vs a single-threaded oracle
//===----------------------------------------------------------------------===//

TEST(ShardedRangeOps, ClearRangeSpanningStripesMatchesOracle) {
  ShadowSpaceMetadata Sharded(FacilityOptions{ConcurrencyModel::Sharded, 4});
  ShadowSpaceMetadata Oracle;
  ASSERT_EQ(Sharded.shards(), 4u);
  ASSERT_EQ(Sharded.concurrency(), ConcurrencyModel::Sharded);
  ASSERT_EQ(Oracle.concurrency(), ConcurrencyModel::SingleThread);

  // Populate five stripes' worth of slots, every other slot, so the
  // clear path sees hits and misses alike.
  const uint64_t Lo = 0x4000'0000;
  const uint64_t Hi = Lo + 5 * Stripe;
  for (uint64_t A = Lo; A < Hi; A += 16) {
    Sharded.update(A, A, A + 64);
    Oracle.update(A, A, A + 64);
  }

  // Clear a window that starts and ends mid-stripe and crosses three
  // stripe boundaries (so it is chunked over four shard locks).
  const uint64_t From = Lo + Stripe / 2 + 8;
  const uint64_t Size = 3 * Stripe + 24;
  EXPECT_EQ(Sharded.clearRange(From, Size), Oracle.clearRange(From, Size));

  for (uint64_t A = Lo; A < Hi; A += 8)
    ASSERT_EQ(Sharded.lookup(A), Oracle.lookup(A)) << "slot " << A;

  MetadataStats St = Sharded.stats();
  EXPECT_EQ(St.Clears, Oracle.stats().Clears);
  EXPECT_GT(St.LockAcquires, 0u);
  EXPECT_EQ(Oracle.stats().LockAcquires, 0u);
}

TEST(ShardedRangeOps, CopyRangeSpanningStripesMatchesOracle) {
  HashTableMetadata Sharded(16, FacilityOptions{ConcurrencyModel::Sharded, 8});
  HashTableMetadata Oracle;
  ASSERT_EQ(Sharded.shards(), 8u);

  // Source carries metadata on a sparse grid; the destination starts
  // with stale bounds that the copy must overwrite or clear.
  const uint64_t Src = 0x5000'0000;
  const uint64_t Dst = 0x7000'0800; // Different phase within its stripe.
  const uint64_t Size = 2 * Stripe + 512;
  for (uint64_t Off = 0; Off < Size; Off += 24) {
    Sharded.update(Src + Off, Src + Off, Src + Off + 128);
    Oracle.update(Src + Off, Src + Off, Src + Off + 128);
  }
  for (uint64_t Off = 0; Off < Size; Off += 40) {
    Sharded.update(Dst + Off, 0xdead, 0xbeef);
    Oracle.update(Dst + Off, 0xdead, 0xbeef);
  }

  EXPECT_EQ(Sharded.copyRange(Dst, Src, Size), Oracle.copyRange(Dst, Src, Size));

  for (uint64_t Off = 0; Off < Size; Off += 8) {
    ASSERT_EQ(Sharded.lookup(Dst + Off), Oracle.lookup(Dst + Off))
        << "dst slot +" << Off;
    ASSERT_EQ(Sharded.lookup(Src + Off), Oracle.lookup(Src + Off))
        << "src slot +" << Off;
  }
}

TEST(ShardedRangeOps, BatchOpsCrossStripesLikeScalars) {
  ShadowSpaceMetadata Sharded(FacilityOptions{ConcurrencyModel::Sharded, 4});
  ShadowSpaceMetadata Oracle;

  // One batch whose addresses hop stripes (and wrap shard indices) on
  // purpose: runs of same-shard addresses interleaved with jumps.
  std::vector<uint64_t> Addrs;
  std::vector<Bounds> In;
  for (uint64_t I = 0; I < 64; ++I) {
    uint64_t A = 0x2000'0000 + (I % 5) * Stripe + I * 8;
    Addrs.push_back(A);
    In.push_back(Bounds{A + 1, A + 256});
  }
  Sharded.updateN(Addrs.data(), In.data(), Addrs.size());
  Oracle.updateN(Addrs.data(), In.data(), Addrs.size());

  std::vector<Bounds> OutSharded(Addrs.size()), OutOracle(Addrs.size());
  Sharded.lookupN(Addrs.data(), OutSharded.data(), Addrs.size());
  Oracle.lookupN(Addrs.data(), OutOracle.data(), Addrs.size());
  for (size_t I = 0; I < Addrs.size(); ++I) {
    EXPECT_EQ(OutSharded[I], In[I]) << I;
    EXPECT_EQ(OutSharded[I], OutOracle[I]) << I;
  }
}

//===----------------------------------------------------------------------===//
// Concurrent hammer: slots survive, statistics add up
//===----------------------------------------------------------------------===//

TEST(ShardedConcurrency, ParallelHammerLosesNoSlotsAndCountsLocks) {
  HashTableMetadata M(16, FacilityOptions{ConcurrencyModel::Sharded, 8});
  constexpr unsigned Threads = 8;
  constexpr uint64_t SlotsPerThread = 4096;
  constexpr uint64_t Base = 0x6000'0000;

  // Threads interleave slot-by-slot within the same stripes, so every
  // shard sees traffic from all eight threads at once.
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M, T] {
      for (uint64_t I = 0; I < SlotsPerThread; ++I) {
        uint64_t A = Base + T * 8 + I * (Threads * 8);
        M.update(A, A + 1, A + 128);
      }
      for (uint64_t I = 0; I < SlotsPerThread; ++I) {
        uint64_t A = Base + T * 8 + I * (Threads * 8);
        Bounds B = M.lookup(A);
        (void)B; // Verified from the main thread below.
      }
    });
  for (auto &Th : Pool)
    Th.join();

  MetadataStats St = M.stats();
  EXPECT_EQ(St.Updates, uint64_t(Threads) * SlotsPerThread);
  EXPECT_EQ(St.Lookups, uint64_t(Threads) * SlotsPerThread);
  // Every single-slot operation takes exactly one striped-lock
  // acquisition in the Sharded model.
  EXPECT_EQ(St.LockAcquires, 2 * uint64_t(Threads) * SlotsPerThread);
  EXPECT_GE(St.contentionSimCost(), St.LockAcquires);

  for (unsigned T = 0; T < Threads; ++T)
    for (uint64_t I = 0; I < SlotsPerThread; ++I) {
      uint64_t A = Base + T * 8 + I * (Threads * 8);
      ASSERT_EQ(M.lookup(A), (Bounds{A + 1, A + 128})) << "T" << T << " I" << I;
    }
}

//===----------------------------------------------------------------------===//
// Multi-lane sessions: the full detection matrix still holds per lane
//===----------------------------------------------------------------------===//

TEST(MultiLaneSessions, FourLaneAttackSweepMissesNothing) {
  for (const AttackCase &A : attackSuite()) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = CheckMode::Full;
    BuildResult Prog = buildProgram(A.Source, B);
    ASSERT_TRUE(Prog.ok()) << A.Name << ": " << Prog.errorText();

    RunRequest Req;
    Req.Lanes = 4;
    Req.FacilityShards = 4;
    SessionResult S = runSession(Prog, Req);
    ASSERT_EQ(S.PerLane.size(), 4u) << A.Name;
    for (size_t L = 0; L < S.PerLane.size(); ++L) {
      const RunResult &R = S.PerLane[L];
      EXPECT_TRUE(R.violationDetected())
          << A.Name << " lane " << L << ": trap=" << trapName(R.Trap)
          << " exit=" << R.ExitCode << " msg=" << R.Message;
      EXPECT_FALSE(R.attackLanded()) << A.Name << " lane " << L;
    }
    EXPECT_TRUE(S.Combined.violationDetected()) << A.Name;
  }
}

TEST(MultiLaneSessions, FourLaneBugBenchSweepMissesNothing) {
  // Every Table 4 kernel is detected under full checking (the matrix in
  // test_bugbench.cpp); four concurrent lanes must not change that.
  for (const BugCase &Bug : bugbenchSuite()) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = CheckMode::Full;
    BuildResult Prog = buildProgram(Bug.Source, B);
    ASSERT_TRUE(Prog.ok()) << Bug.Name << ": " << Prog.errorText();

    RunRequest Req;
    Req.Lanes = 4;
    Req.FacilityShards = 4;
    SessionResult S = runSession(Prog, Req);
    ASSERT_EQ(S.PerLane.size(), 4u) << Bug.Name;
    for (size_t L = 0; L < S.PerLane.size(); ++L)
      EXPECT_TRUE(S.PerLane[L].violationDetected())
          << Bug.Name << " lane " << L << ": trap="
          << trapName(S.PerLane[L].Trap);
  }
}

//===----------------------------------------------------------------------===//
// Single-lane sessions reproduce the classic (gated) execution exactly
//===----------------------------------------------------------------------===//

TEST(SessionDeterminism, SingleLaneMatchesLegacyRunProgram) {
  for (const Workload &W : benchmarkSuite()) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = CheckMode::Full;
    BuildResult Prog = buildProgram(W.Source, B);
    ASSERT_TRUE(Prog.ok()) << W.Name << ": " << Prog.errorText();

    RunResult Legacy = runProgram(Prog);
    SessionResult S = runSession(Prog);
    ASSERT_EQ(S.PerLane.size(), 1u) << W.Name;

    EXPECT_EQ(S.Combined.Counters.Checks, Legacy.Counters.Checks) << W.Name;
    EXPECT_EQ(S.Combined.Counters.MetaLoads, Legacy.Counters.MetaLoads)
        << W.Name;
    EXPECT_EQ(S.Combined.Counters.MetaStores, Legacy.Counters.MetaStores)
        << W.Name;
    EXPECT_EQ(S.Combined.Counters.Cycles, Legacy.Counters.Cycles) << W.Name;
    EXPECT_EQ(S.Combined.Output, Legacy.Output) << W.Name;
    EXPECT_EQ(S.Combined.ExitCode, Legacy.ExitCode) << W.Name;
    // Default request: SingleThread facility, so zero lock traffic.
    EXPECT_EQ(S.Meta.LockAcquires, 0u) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Multi-lane contention accounting and deterministic output merge
//===----------------------------------------------------------------------===//

TEST(MultiLaneSessions, ContentionCountersAndDeterministicMerge) {
  // treeadd is address-independent: its control flow, output and exit
  // code do not depend on where the shared allocator places its blocks,
  // so every lane must reproduce the single-lane run exactly. (Pointer-
  // chasing workloads like bh or mst fold heap addresses into their
  // results and legitimately diverge per lane over a shared heap.)
  const Workload *Chosen = nullptr;
  for (const Workload &W : benchmarkSuite())
    if (W.Name == "treeadd")
      Chosen = &W;
  ASSERT_NE(Chosen, nullptr);

  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::Full;
  BuildResult Prog = buildProgram(Chosen->Source, B);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunResult Single = runSession(Prog).Combined;
  ASSERT_TRUE(Single.ok()) << Single.Message;
  ASSERT_GT(Single.Counters.MetaLoads + Single.Counters.MetaStores, 0u);

  RunRequest Req;
  Req.Lanes = 4;
  Req.FacilityShards = 4;
  SessionResult S = runSession(Prog, Req);
  ASSERT_EQ(S.PerLane.size(), 4u);

  std::string Concatenated;
  for (size_t L = 0; L < S.PerLane.size(); ++L) {
    const RunResult &R = S.PerLane[L];
    EXPECT_TRUE(R.ok()) << "lane " << L << ": " << R.Message;
    EXPECT_EQ(R.Output, Single.Output) << "lane " << L;
    EXPECT_EQ(R.ExitCode, Single.ExitCode) << "lane " << L;
    EXPECT_EQ(R.Counters.Checks, Single.Counters.Checks) << "lane " << L;
    EXPECT_EQ(R.Counters.MetaLoads, Single.Counters.MetaLoads)
        << "lane " << L;
    EXPECT_EQ(R.Counters.MetaStores, Single.Counters.MetaStores)
        << "lane " << L;
    Concatenated += R.Output;
  }
  EXPECT_EQ(S.Combined.Output, Concatenated);
  EXPECT_EQ(S.Combined.Counters.Checks, 4 * Single.Counters.Checks);
  EXPECT_EQ(S.Combined.Counters.MetaLoads, 4 * Single.Counters.MetaLoads);
  EXPECT_EQ(S.Combined.Counters.MetaStores, 4 * Single.Counters.MetaStores);
  EXPECT_EQ(S.Combined.ExitCode, Single.ExitCode);

  // Sharded model: every metadata operation takes a striped lock, so
  // the session-level facility stats must show lock traffic.
  EXPECT_GT(S.Meta.LockAcquires, 0u);
  EXPECT_GT(S.Meta.contentionSimCost(), 0u);
}

//===----------------------------------------------------------------------===//
// LockFreeRead: seqlock stress, retry accounting, end-to-end sweeps
//===----------------------------------------------------------------------===//

/// Writer-hammer seqlock stress over one facility: a writer flips a
/// fixed set of slots between two bound pairs while readers hammer
/// lookups. Every observed value must be PairA, PairB, or (for slots
/// the writer has not reached yet) null — never a Base from one pair
/// with a Bound from the other, which is exactly the torn read the
/// seqlock exists to discard.
template <typename Facility, typename... CtorArgs>
void writerHammerNeverTearsPairs(CtorArgs... Args) {
  Facility M(Args..., FacilityOptions{ConcurrencyModel::LockFreeRead, 4});
  ASSERT_EQ(M.concurrency(), ConcurrencyModel::LockFreeRead);
  constexpr uint64_t Base = 0x9000'0000;
  constexpr uint64_t NumSlots = 64; // Spread over all four stripes.
  const Bounds PairA{0x1111'1111'1111'1110ULL, 0x1111'1111'1111'1111ULL};
  const Bounds PairB{0x2222'2222'2222'2220ULL, 0x2222'2222'2222'2222ULL};
  auto SlotAddr = [](uint64_t I) { return Base + I * (Stripe / 8); };
  for (uint64_t I = 0; I < NumSlots; ++I)
    M.update(SlotAddr(I), PairA);

  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    // Alternate the whole slot set between the two pairs, and keep
    // inserting fresh addresses so the hash facility grows (publishing
    // new table generations) under the readers' feet.
    uint64_t Fresh = Base + 0x100'0000;
    for (unsigned Round = 0; !Done.load(std::memory_order_relaxed); ++Round) {
      const Bounds &P = Round % 2 ? PairB : PairA;
      for (uint64_t I = 0; I < NumSlots; ++I)
        M.update(SlotAddr(I), P);
      for (unsigned K = 0; K < 64; ++K, Fresh += 8)
        M.update(Fresh, Fresh, Fresh + 8);
    }
  });

  constexpr unsigned Readers = 3;
  constexpr uint64_t ReadsPerThread = 1 << 15;
  std::vector<std::thread> Pool;
  std::atomic<uint64_t> Torn{0};
  for (unsigned T = 0; T < Readers; ++T)
    Pool.emplace_back([&, T] {
      for (uint64_t I = 0; I < ReadsPerThread; ++I) {
        Bounds B = M.lookup(SlotAddr((I + T) % NumSlots));
        if (!(B == PairA || B == PairB))
          Torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &Th : Pool)
    Th.join();
  Done.store(true, std::memory_order_relaxed);
  Writer.join();

  EXPECT_EQ(Torn.load(), 0u) << "a lookup observed a torn base/bound pair";
  MetadataStats St = M.stats();
  EXPECT_EQ(St.SeqlockReads, uint64_t(Readers) * ReadsPerThread);
}

TEST(LockFreeRead, HashWriterHammerNeverTearsPairs) {
  writerHammerNeverTearsPairs<HashTableMetadata>(/*InitialLog2Size=*/8);
}

TEST(LockFreeRead, ShadowWriterHammerNeverTearsPairs) {
  writerHammerNeverTearsPairs<ShadowSpaceMetadata>();
}

TEST(LockFreeRead, ReadOnlyHammerAcquiresNoLocks) {
  // The acceptance criterion for the lock-free read path: across a
  // multi-threaded read-only hammer the lock-acquire counter stays
  // exactly flat — every acquisition happened during the write phase.
  HashTableMetadata M(16, FacilityOptions{ConcurrencyModel::LockFreeRead, 4});
  constexpr uint64_t Slots = 1 << 12;
  for (uint64_t I = 0; I < Slots; ++I) {
    uint64_t A = 0x3000'0000 + I * 8;
    M.update(A, A + 1, A + 64);
  }
  const uint64_t WriteAcquires = M.stats().LockAcquires;
  EXPECT_EQ(WriteAcquires, Slots); // One exclusive acquisition per update.

  constexpr unsigned Threads = 4;
  constexpr uint64_t ReadsPerThread = 1 << 14;
  std::vector<std::thread> Pool;
  std::atomic<uint64_t> Wrong{0}; // Verified from the main thread below.
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M, &Wrong] {
      for (uint64_t I = 0; I < ReadsPerThread; ++I) {
        uint64_t A = 0x3000'0000 + (I % Slots) * 8;
        if (!(M.lookup(A) == Bounds{A + 1, A + 64}))
          Wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &Th : Pool)
    Th.join();
  EXPECT_EQ(Wrong.load(), 0u);

  MetadataStats St = M.stats();
  EXPECT_EQ(St.LockAcquires, WriteAcquires) << "read path acquired a lock";
  EXPECT_EQ(St.SeqlockReads, uint64_t(Threads) * ReadsPerThread);
  // No writer ran, so no retry was possible.
  EXPECT_EQ(St.SeqlockRetries, 0u);
}

TEST(LockFreeRead, RetryAccountingPricesLikeContendedAcquisition) {
  // The pricing identity behind the non-gated contention_* keys: clean
  // seqlock reads are free, each retry costs one contended acquisition.
  MetadataStats St;
  St.LockAcquires = 10;
  St.LockContended = 3;
  St.SeqlockReads = 1000;
  St.SeqlockRetries = 5;
  EXPECT_EQ(St.contentionSimCost(), 7 * UncontendedLockCost +
                                        3 * ContendedLockCost +
                                        5 * SeqlockRetryCost);
  EXPECT_EQ(SeqlockRetryCost, ContendedLockCost);

  // Live accounting: a single-threaded LockFreeRead facility counts one
  // seqlock read per lookup and never retries, and its sim cost is the
  // write-phase acquisitions plus nothing for the clean reads.
  ShadowSpaceMetadata M(FacilityOptions{ConcurrencyModel::LockFreeRead, 1});
  for (uint64_t I = 0; I < 256; ++I)
    M.update(0x1000 + I * 8, I, I + 8);
  for (uint64_t I = 0; I < 512; ++I)
    (void)M.lookup(0x1000 + (I % 256) * 8);
  MetadataStats Live = M.stats();
  EXPECT_EQ(Live.SeqlockReads, 512u);
  EXPECT_EQ(Live.SeqlockRetries, 0u);
  EXPECT_EQ(Live.LockAcquires, 256u);
  EXPECT_EQ(Live.contentionSimCost(),
            (Live.LockAcquires - Live.LockContended) * UncontendedLockCost +
                Live.LockContended * ContendedLockCost);
}

/// Deterministic single-threaded mixed-op equivalence: LockFreeRead must
/// be a pure read-path optimization — every lookup/update/range result
/// identical to the SingleThread oracle.
template <typename Facility, typename... CtorArgs>
void lockFreeMatchesOracle(CtorArgs... Args) {
  Facility M(Args..., FacilityOptions{ConcurrencyModel::LockFreeRead, 4});
  Facility Oracle(Args..., FacilityOptions{});
  const uint64_t Lo = 0x8000'0000;
  for (uint64_t I = 0; I < 2048; ++I) {
    uint64_t A = Lo + I * 24; // Unaligned stride: hits and misses both.
    M.update(A & ~7ULL, A, A + 96);
    Oracle.update(A & ~7ULL, A, A + 96);
  }
  EXPECT_EQ(M.clearRange(Lo + 512, 3 * Stripe + 40),
            Oracle.clearRange(Lo + 512, 3 * Stripe + 40));
  EXPECT_EQ(M.copyRange(Lo + 8 * Stripe, Lo, Stripe + 256),
            Oracle.copyRange(Lo + 8 * Stripe, Lo, Stripe + 256));
  for (uint64_t A = Lo; A < Lo + 9 * Stripe; A += 8)
    ASSERT_EQ(M.lookup(A), Oracle.lookup(A)) << "slot " << A;
  EXPECT_EQ(M.stats().SeqlockRetries, 0u); // Single-threaded: no writer race.
  // The oracle never touches the seqlock.
  EXPECT_EQ(Oracle.stats().SeqlockReads, 0u);
}

TEST(LockFreeRead, HashMixedOpsMatchOracle) {
  lockFreeMatchesOracle<HashTableMetadata>(/*InitialLog2Size=*/8);
}

TEST(LockFreeRead, ShadowMixedOpsMatchOracle) {
  lockFreeMatchesOracle<ShadowSpaceMetadata>();
}

TEST(LockFreeRead, FourLaneAttackSweepMissesNothing) {
  for (const AttackCase &A : attackSuite()) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = CheckMode::Full;
    BuildResult Prog = buildProgram(A.Source, B);
    ASSERT_TRUE(Prog.ok()) << A.Name << ": " << Prog.errorText();

    RunRequest Req;
    Req.Lanes = 4;
    Req.FacilityShards = 4;
    Req.LockFreeReads = true;
    SessionResult S = runSession(Prog, Req);
    ASSERT_EQ(S.PerLane.size(), 4u) << A.Name;
    for (size_t L = 0; L < S.PerLane.size(); ++L) {
      const RunResult &R = S.PerLane[L];
      EXPECT_TRUE(R.violationDetected())
          << A.Name << " lane " << L << ": trap=" << trapName(R.Trap)
          << " exit=" << R.ExitCode << " msg=" << R.Message;
      EXPECT_FALSE(R.attackLanded()) << A.Name << " lane " << L;
    }
    EXPECT_TRUE(S.Combined.violationDetected()) << A.Name;
    // Every facility lookup went through the seqlock read path.
    EXPECT_EQ(S.Meta.SeqlockReads, S.Meta.Lookups) << A.Name;
  }
}

TEST(LockFreeRead, FourLaneBugBenchSweepMissesNothing) {
  for (const BugCase &Bug : bugbenchSuite()) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = CheckMode::Full;
    BuildResult Prog = buildProgram(Bug.Source, B);
    ASSERT_TRUE(Prog.ok()) << Bug.Name << ": " << Prog.errorText();

    RunRequest Req;
    Req.Lanes = 4;
    Req.FacilityShards = 4;
    Req.LockFreeReads = true;
    SessionResult S = runSession(Prog, Req);
    ASSERT_EQ(S.PerLane.size(), 4u) << Bug.Name;
    for (size_t L = 0; L < S.PerLane.size(); ++L)
      EXPECT_TRUE(S.PerLane[L].violationDetected())
          << Bug.Name << " lane " << L
          << ": trap=" << trapName(S.PerLane[L].Trap);
    EXPECT_EQ(S.Meta.SeqlockReads, S.Meta.Lookups) << Bug.Name;
  }
}

} // namespace
