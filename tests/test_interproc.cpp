//===- tests/test_interproc.cpp - inter-procedural bounds propagation -------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the inter-procedural bounds propagation sub-pass
/// (opt/checks/InterProc.h) and its CallGraph substrate:
///
///   * call-graph construction: direct edges, address-taken escape,
///     recursion/SCCs, external reachability,
///   * soundness: out-of-bounds accesses through callees are still caught
///     with checkopt(interproc) on — direct, recursive, and
///     function-pointer call sites, plus the full attack and BugBench
///     suites under an interproc-only configuration,
///   * precision: callee entry checks elided when every call site proves
///     them, caller re-checks elided after calls with must-check/return
///     summaries, global-array checks settled by propagated index ranges,
///     and duplicate pre-call checks sunk into the unique callee,
///   * the acceptance criterion: strictly fewer dynamic checks on the
///     perimeter, bh, and go workloads versus checkopt(range,redundant,
///     hoist) alone, with identical program results.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRBuilder.h"
#include "opt/checks/CallGraph.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/InterProc.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

unsigned countChecksIn(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      if (isa<SpatialCheckInst>(I.get()))
        ++N;
  return N;
}

BuildResult buildSpec(const std::string &Src, const std::string &Spec) {
  PipelinePlan Plan;
  Plan.frontend(Src);
  std::string Err;
  EXPECT_TRUE(Plan.appendSpec(Spec, &Err)) << Err;
  BuildResult R = Plan.build();
  EXPECT_TRUE(R.ok()) << R.errorText();
  return R;
}

//===----------------------------------------------------------------------===//
// CallGraph
//===----------------------------------------------------------------------===//

TEST(CallGraph, DirectEdgesRecursionAndEscape) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);

  Function *Leaf = M.createFunction("leaf", Ctx.funcTy(Ctx.voidTy(), {}));
  B.setInsertPoint(Leaf->createBlock("entry"));
  B.ret();

  Function *Self = M.createFunction("self", Ctx.funcTy(Ctx.voidTy(), {}));
  B.setInsertPoint(Self->createBlock("entry"));
  B.call(Self, {});
  B.ret();

  Function *Escaped =
      M.createFunction("escaped", Ctx.funcTy(Ctx.voidTy(), {}));
  B.setInsertPoint(Escaped->createBlock("entry"));
  B.ret();

  Function *Main = M.createFunction("main", Ctx.funcTy(Ctx.i32(), {}));
  B.setInsertPoint(Main->createBlock("entry"));
  B.call(Leaf, {});
  B.call(Self, {});
  B.makeBounds(Escaped, Escaped); // The §5.2 encoding: address escapes.
  B.callIndirect(Escaped->functionType(), B.bitcast(Escaped, I8P), {});
  B.ret(M.constI32(0));

  checkopt::CallGraph CG(M);
  EXPECT_EQ(CG.callSites().size(), 3u); // leaf, self->self, main->self.
  EXPECT_EQ(CG.callersOf(Leaf).size(), 1u);
  EXPECT_EQ(CG.callersOf(Self).size(), 2u);

  EXPECT_FALSE(CG.isAddressTaken(Leaf));
  EXPECT_TRUE(CG.isAddressTaken(Escaped));
  EXPECT_TRUE(CG.hasIndirectCallSites(Main));
  EXPECT_FALSE(CG.hasIndirectCallSites(Leaf));

  EXPECT_TRUE(CG.externallyReachable(Main)) << "entry function";
  EXPECT_TRUE(CG.externallyReachable(Escaped)) << "address escapes";
  EXPECT_FALSE(CG.externallyReachable(Leaf));
  EXPECT_FALSE(CG.externallyReachable(Self));

  EXPECT_TRUE(CG.isRecursive(Self));
  EXPECT_FALSE(CG.isRecursive(Leaf));

  // Bottom-up: callees before callers.
  unsigned LeafScc = CG.sccId(Leaf), MainScc = CG.sccId(Main);
  EXPECT_LT(LeafScc, MainScc);
}

TEST(CallGraph, MutualRecursionFormsOneScc) {
  const char *Src = "int odd(int n);\n"
                    "int even(int n) { if (n == 0) return 1; "
                    "return odd(n - 1); }\n"
                    "int odd(int n) { if (n == 0) return 0; "
                    "return even(n - 1); }\n"
                    "int main() { return even(10); }";
  BuildResult R = buildSpec(Src, "optimize");
  ASSERT_TRUE(R.ok());
  checkopt::CallGraph CG(*R.M);
  Function *Even = R.M->getFunction("even");
  Function *Odd = R.M->getFunction("odd");
  ASSERT_NE(Even, nullptr);
  ASSERT_NE(Odd, nullptr);
  EXPECT_EQ(CG.sccId(Even), CG.sccId(Odd));
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_TRUE(CG.isRecursive(Odd));
}

//===----------------------------------------------------------------------===//
// Soundness: violations through callees are still detected
//===----------------------------------------------------------------------===//

TEST(InterProcSoundness, CalleeOverflowStillTrapsWhenSiteProvesLess) {
  // The caller proves [0, 4) only; the callee touches [12, 16), so its
  // check must survive and trap.
  const char *Src = "int f(int* p) { return p[3]; }\n"
                    "int main() {\n"
                    "  int* q = (int*)malloc(8);\n"
                    "  q[0] = 1;\n"
                    "  return f(q);\n"
                    "}";
  BuildResult R = buildSpec(Src, "optimize,softbound,checkopt");
  RunResult RR = runSession(R).Combined;
  EXPECT_EQ(RR.Trap, TrapKind::SpatialViolation) << trapName(RR.Trap);
}

TEST(InterProcSoundness, RecursiveCalleeOverflowStillTraps) {
  const char *Src = "int walk(int* p, int n) {\n"
                    "  if (n <= 0) return p[4];\n"
                    "  return walk(p + 1, n - 1);\n"
                    "}\n"
                    "int main() {\n"
                    "  int* q = (int*)malloc(16);\n"
                    "  q[0] = 1;\n"
                    "  return walk(q, 2);\n"
                    "}";
  BuildResult R = buildSpec(Src, "optimize,softbound,checkopt");
  RunResult RR = runSession(R).Combined;
  EXPECT_EQ(RR.Trap, TrapKind::SpatialViolation) << trapName(RR.Trap);
}

TEST(InterProcSoundness, FunctionPointerCalleeIsNeverElided) {
  // deref's address escapes into an indirect call, so its checks must
  // bottom conservatively — and still catch the overflow.
  const char *Src = "int deref(int* p) { return p[2]; }\n"
                    "int main() {\n"
                    "  int (*fn)(int*) = deref;\n"
                    "  int* q = (int*)malloc(8);\n"
                    "  q[0] = 1; q[1] = 2;\n"
                    "  return fn(q);\n"
                    "}";
  BuildResult R = buildSpec(Src, "optimize,softbound,checkopt");
  RunResult RR = runSession(R).Combined;
  EXPECT_EQ(RR.Trap, TrapKind::SpatialViolation) << trapName(RR.Trap);
}

TEST(InterProcSoundness, WrappedI64ArithmeticIsNotRangeElided) {
  // Regression: the VM wraps 64-bit arithmetic (no saturation), so the
  // interval transfers must not saturate at the i64 boundary either. x
  // climbs to 2^62 through a widened phi, the `x > 0` refinement gives
  // [1, INT64_MAX], and a *saturating* lattice would conclude
  // y = x * 2 + 61 in [63, INT64_MAX], hence y % 64 in [0, 63] —
  // statically inside hist — and delete the check. At run time y wraps
  // to INT64_MIN + 61, y % 64 == -3, and hist[-3] underflows: the check
  // must survive and trap.
  const char *Src = "int hist[64];\n"
                    "int main() {\n"
                    "  long x = 1;\n"
                    "  for (int i = 0; i < 62; i++) x = x * 2;\n"
                    "  if (x > 0) {\n"
                    "    long y = x * 2 + 61;\n"
                    "    hist[y % 64] = 1;\n"
                    "  }\n"
                    "  return 0;\n"
                    "}";
  BuildResult R = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_EQ(R.Pipeline.CheckOpt.InterProcRangeElided, 0u)
      << "no static proof exists: y wraps";
  RunResult RR = runSession(R).Combined;
  EXPECT_EQ(RR.Trap, TrapKind::SpatialViolation) << trapName(RR.Trap);
}

TEST(InterProcSoundness, InternalEntryRejectedAfterInterProc) {
  // take's entry check was elided because its only call site proves it;
  // the module records the whole-program contract, and the run driver
  // must refuse to enter take directly (which would bypass the proof).
  const char *Src = "int take(int* p) { return p[0]; }\n"
                    "int main() {\n"
                    "  int* q = (int*)malloc(4);\n"
                    "  q[0] = 5;\n"
                    "  return take(q);\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  ASSERT_TRUE(On.M->hasInterProcContract());

  RunOptions RO;
  RO.Entry = "take";
  RunResult RR = runSession(On, RO).Combined;
  EXPECT_FALSE(RR.ok());
  EXPECT_NE(RR.Message.find("interproc"), std::string::npos) << RR.Message;

  RunResult Main = runSession(On).Combined;
  ASSERT_TRUE(Main.ok()) << Main.Message;
  EXPECT_EQ(Main.ExitCode, 5);

  // Without the interproc sub-pass no contract exists and any entry is
  // still accepted.
  BuildResult Off =
      buildSpec(Src, "optimize,softbound,checkopt(redundant,range,hoist)");
  EXPECT_FALSE(Off.M->hasInterProcContract());
  RunResult OffTake = runSession(Off, RO).Combined;
  EXPECT_EQ(OffTake.Message.find("interproc"), std::string::npos)
      << OffTake.Message;
}

TEST(InterProcSoundness, AttackAndBugBenchSuitesStayDetected) {
  // Interproc alone (no other sub-passes masking it): every Table 3
  // attack and Table 4 bug must still be detected.
  for (const AttackCase &A : attackSuite()) {
    BuildResult R =
        buildSpec(A.Source, "optimize,softbound,checkopt(interproc)");
    RunResult RR = runSession(R).Combined;
    EXPECT_TRUE(RR.violationDetected())
        << A.Name << ": trap=" << trapName(RR.Trap);
    EXPECT_FALSE(RR.attackLanded()) << A.Name;
  }
  for (const BugCase &Bug : bugbenchSuite()) {
    BuildResult R =
        buildSpec(Bug.Source, "optimize,softbound,checkopt(interproc)");
    RunResult RR = runSession(R).Combined;
    EXPECT_TRUE(RR.violationDetected())
        << Bug.Name << ": trap=" << trapName(RR.Trap);
  }
}

//===----------------------------------------------------------------------===//
// Precision: the four elision mechanisms
//===----------------------------------------------------------------------===//

TEST(InterProcPrecision, CalleeChecksElidedWhenEverySiteProves) {
  const char *Src = "int take(int* p) { return p[0] + p[1]; }\n"
                    "int main() {\n"
                    "  int* q = (int*)malloc(40);\n"
                    "  q[0] = 1; q[1] = 2;\n"
                    "  return take(q);\n"
                    "}";
  BuildResult Off =
      buildSpec(Src, "optimize,softbound,checkopt(redundant,range,hoist)");
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcCalleeElided, 2u)
      << "both callee loads are caller-proven";

  Function *Take = On.M->getFunction("_sb_take");
  ASSERT_NE(Take, nullptr);
  EXPECT_EQ(countChecksIn(*Take), 0u);

  RunResult ROff = runSession(Off).Combined;
  RunResult ROn = runSession(On).Combined;
  ASSERT_TRUE(ROff.ok() && ROn.ok());
  EXPECT_EQ(ROn.ExitCode, ROff.ExitCode);
  EXPECT_LT(ROn.Counters.Checks, ROff.Counters.Checks);
}

TEST(InterProcPrecision, CallerRecheckElidedViaMustCheckSummary) {
  // f checks p[0] on every path to its return, so the caller's later
  // q[0] re-check is redundant; the q[1] access is not covered.
  const char *Src = "int f(int* p) { p[0] = 9; return p[0]; }\n"
                    "int main() {\n"
                    "  int* q = (int*)malloc(8);\n"
                    "  int a = f(q);\n"
                    "  q[1] = 5;\n"
                    "  return a + q[0];\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcCallerElided, 1u);
  RunResult RR = runSession(On).Combined;
  ASSERT_TRUE(RR.ok()) << RR.Message;
  EXPECT_EQ(RR.ExitCode, 18);
}

TEST(InterProcPrecision, ReturnSummarySeedsCallerFacts) {
  const char *Src = "int* mk() {\n"
                    "  int* p = (int*)malloc(8);\n"
                    "  p[0] = 7;\n"
                    "  return p;\n"
                    "}\n"
                    "int main() {\n"
                    "  int* q = mk();\n"
                    "  return q[0];\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcRetSummaries, 1u);
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcCallerElided, 1u)
      << "q[0] was checked against the returned bounds inside mk";
  RunResult RR = runSession(On).Combined;
  ASSERT_TRUE(RR.ok()) << RR.Message;
  EXPECT_EQ(RR.ExitCode, 7);
}

TEST(InterProcPrecision, GuardedGlobalIndexElidedByRanges) {
  // `continue` makes the loop body multi-block, so constant-hull hoisting
  // skips it; the propagated range proof settles the check instead.
  const char *Src = "int tab[100];\n"
                    "int main() {\n"
                    "  long s = 0;\n"
                    "  for (int i = 0; i < 100; i++) {\n"
                    "    if (i % 3 == 0) continue;\n"
                    "    s += tab[i];\n"
                    "  }\n"
                    "  return (int)(s % 7);\n"
                    "}";
  BuildResult Off =
      buildSpec(Src, "optimize,softbound,checkopt(redundant,range,hoist)");
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcRangeElided, 1u);
  RunResult ROff = runSession(Off).Combined;
  RunResult ROn = runSession(On).Combined;
  ASSERT_TRUE(ROff.ok() && ROn.ok());
  EXPECT_EQ(ROn.ExitCode, ROff.ExitCode);
  EXPECT_LT(ROn.Counters.Checks, ROff.Counters.Checks);
}

TEST(InterProcPrecision, ArgumentRangesPropagateThroughRecursion) {
  // perimeter's shape: the recursion halves a positive argument, so the
  // modulo-indexed histogram access provably stays inside the global.
  const char *Src = "int hist[64];\n"
                    "int depth2(int size) {\n"
                    "  hist[size % 64] += 1;\n"
                    "  if (size <= 1) return 1;\n"
                    "  return depth2(size / 2) + 1;\n"
                    "}\n"
                    "int main() { return depth2(64); }";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  // (The store side of `+=` is already RCE'd as dominated by the load's
  // check; the survivor settles through the propagated argument range.)
  EXPECT_GE(On.Pipeline.CheckOpt.InterProcRangeElided, 1u);
  Function *F = On.M->getFunction("_sb_depth2");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(countChecksIn(*F), 0u) << "no dynamic checks remain in depth2";
  RunResult RR = runSession(On).Combined;
  ASSERT_TRUE(RR.ok()) << RR.Message;
  EXPECT_EQ(RR.ExitCode, 7);
}

TEST(InterProcPrecision, DuplicateCallerCheckSinksIntoCallee) {
  // Hand-built IR: the caller's check immediately precedes the call (no
  // access in between) and the callee re-verifies a superset on every
  // path to its return — the caller copy is deleted, the callee's wider
  // check survives (the call site proves only [0, 4) of its [0, 8)).
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  IRBuilder B(M);

  Function *F =
      M.createFunction("_sb_f", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("entry"));
  B.spatialCheck(F->arg(0), F->arg(1), 8, /*IsStore=*/true);
  B.ret();

  Function *Caller =
      M.createFunction("_sb_caller", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  Caller->setTransformed();
  B.setInsertPoint(Caller->createBlock("entry"));
  B.spatialCheck(Caller->arg(0), Caller->arg(1), 4, /*IsStore=*/true);
  B.call(F, {Caller->arg(0), Caller->arg(1)});
  B.ret();

  CheckOptStats Stats;
  unsigned Deleted = checkopt::propagateInterProcChecks(M, Stats);
  EXPECT_EQ(Deleted, 1u);
  EXPECT_EQ(Stats.InterProcSunkElided, 1u);
  EXPECT_EQ(countChecksIn(*Caller), 0u);
  EXPECT_EQ(countChecksIn(*F), 1u) << "callee's wider check must survive";
}

TEST(InterProcPrecision, EqualSizeSinkKeepsExactlyOneCopy) {
  // Caller and callee check the *same* condition. The sunk caller copy
  // must not feed the fact that would let the callee's copy be
  // callee-elided too — exactly one of the two may be deleted, or an
  // out-of-bounds pointer would trap in neither.
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  IRBuilder B(M);

  Function *F =
      M.createFunction("_sb_f", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("entry"));
  B.spatialCheck(F->arg(0), F->arg(1), 8, /*IsStore=*/true);
  B.ret();

  Function *Caller =
      M.createFunction("_sb_caller", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  Caller->setTransformed();
  B.setInsertPoint(Caller->createBlock("entry"));
  B.spatialCheck(Caller->arg(0), Caller->arg(1), 8, /*IsStore=*/true);
  B.call(F, {Caller->arg(0), Caller->arg(1)});
  B.ret();

  CheckOptStats Stats;
  unsigned Deleted = checkopt::propagateInterProcChecks(M, Stats);
  EXPECT_EQ(Deleted, 1u);
  EXPECT_EQ(countChecksIn(*Caller) + countChecksIn(*F), 1u)
      << "one copy of the condition must survive";
}

TEST(InterProcPrecision, SinkRequiresCalleeEntryCheck) {
  // The callee's check sits behind another call (which could exit() or
  // longjmp away), so it is not a must-execute-first entry check and the
  // caller's copy must stay.
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  IRBuilder B(M);

  Function *Leaf = M.createFunction("_sb_leaf", Ctx.funcTy(Ctx.voidTy(), {}));
  B.setInsertPoint(Leaf->createBlock("entry"));
  B.ret();

  Function *F =
      M.createFunction("_sb_f", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("entry"));
  B.call(Leaf, {});
  B.spatialCheck(F->arg(0), F->arg(1), 8, true);
  B.ret();

  Function *Caller =
      M.createFunction("_sb_caller", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  Caller->setTransformed();
  B.setInsertPoint(Caller->createBlock("entry"));
  B.spatialCheck(Caller->arg(0), Caller->arg(1), 4, true);
  B.call(F, {Caller->arg(0), Caller->arg(1)});
  B.ret();

  CheckOptStats Stats;
  checkopt::propagateInterProcChecks(M, Stats);
  EXPECT_EQ(Stats.InterProcSunkElided, 0u);
  EXPECT_EQ(countChecksIn(*Caller), 1u);
}

TEST(InterProcPrecision, SinkBlockedByInterveningAccess) {
  // Same shape, but a store between check and call: the caller's check
  // guards it, so nothing may sink.
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  IRBuilder B(M);

  Function *F =
      M.createFunction("_sb_f", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("entry"));
  B.spatialCheck(F->arg(0), F->arg(1), 8, true);
  B.ret();

  Function *Caller =
      M.createFunction("_sb_caller", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  Caller->setTransformed();
  B.setInsertPoint(Caller->createBlock("entry"));
  B.spatialCheck(Caller->arg(0), Caller->arg(1), 4, true);
  B.store(M.constI32(1), B.bitcast(Caller->arg(0), Ctx.ptrTo(Ctx.i32())));
  B.call(F, {Caller->arg(0), Caller->arg(1)});
  B.ret();

  CheckOptStats Stats;
  checkopt::propagateInterProcChecks(M, Stats);
  EXPECT_EQ(Stats.InterProcSunkElided, 0u);
  EXPECT_EQ(countChecksIn(*Caller), 1u);
}

//===----------------------------------------------------------------------===//
// Scalability: pathologically deep modules must not overflow the stack
//===----------------------------------------------------------------------===//

TEST(CallGraph, DeepCallChainDoesNotOverflowHostStack) {
  // A 50000-deep direct call chain: the SCC computation must walk the
  // graph iteratively — recursing per call edge would exhaust the host
  // stack long before this depth.
  Module M;
  TypeContext &Ctx = M.ctx();
  IRBuilder B(M);
  constexpr unsigned N = 50000;
  std::vector<Function *> Fs(N);
  for (unsigned I = 0; I < N; ++I)
    Fs[I] =
        M.createFunction("f" + std::to_string(I), Ctx.funcTy(Ctx.voidTy(), {}));
  for (unsigned I = 0; I < N; ++I) {
    B.setInsertPoint(Fs[I]->createBlock("entry"));
    if (I + 1 < N)
      B.call(Fs[I + 1], {});
    B.ret();
  }

  checkopt::CallGraph CG(M);
  EXPECT_EQ(CG.callSites().size(), N - 1);
  // Completion order: the leaf finishes first, the root last.
  EXPECT_EQ(CG.sccId(Fs[N - 1]), 0u);
  EXPECT_EQ(CG.sccId(Fs[0]), N - 1);
  EXPECT_FALSE(CG.isRecursive(Fs[0]));
  EXPECT_FALSE(CG.externallyReachable(Fs[1]));
}

TEST(InterProcPrecision, DeepCfgChainIsWalkedIteratively) {
  // One function with a 10000-block straight-line CFG: the refinement
  // accumulation and the fact walk both traverse the dominator tree with
  // explicit worklists. The entry check dominates the identical final
  // check, which must still be elided at this depth.
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  IRBuilder B(M);

  Function *F =
      M.createFunction("_sb_f", Ctx.funcTy(Ctx.voidTy(), {I8P, BT}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("b0"));
  B.spatialCheck(F->arg(0), F->arg(1), 8, /*IsStore=*/true);
  for (unsigned I = 1; I < 10000; ++I) {
    BasicBlock *Next = F->createBlock("b" + std::to_string(I));
    B.br(Next);
    B.setInsertPoint(Next);
  }
  B.spatialCheck(F->arg(0), F->arg(1), 8, /*IsStore=*/true);
  B.ret();

  CheckOptStats Stats;
  unsigned Deleted = checkopt::propagateInterProcChecks(M, Stats);
  EXPECT_EQ(Deleted, 1u);
  EXPECT_EQ(Stats.InterProcCallerElided, 1u);
  EXPECT_EQ(countChecksIn(*F), 1u) << "the dominating entry check survives";
}

//===----------------------------------------------------------------------===//
// Acceptance: recursive workloads
//===----------------------------------------------------------------------===//

TEST(InterProcAcceptance, FewerDynamicChecksOnRecursiveWorkloads) {
  for (const std::string Name : {"perimeter", "bh", "go"}) {
    const Workload *W = nullptr;
    for (const auto &Cand : benchmarkSuite())
      if (Cand.Name == Name)
        W = &Cand;
    ASSERT_NE(W, nullptr) << Name;

    BuildResult Off = buildSpec(W->Source,
                                "optimize,softbound,checkopt(redundant,"
                                "range,hoist)");
    BuildResult On = buildSpec(W->Source, "optimize,softbound,checkopt");
    RunResult ROff = runSession(Off).Combined;
    RunResult ROn = runSession(On).Combined;
    ASSERT_TRUE(ROff.ok()) << Name << ": " << ROff.Message;
    ASSERT_TRUE(ROn.ok()) << Name << ": " << ROn.Message;
    EXPECT_EQ(ROn.ExitCode, ROff.ExitCode) << Name;
    EXPECT_LT(ROn.Counters.Checks, ROff.Counters.Checks)
        << Name << ": interproc must measurably reduce dynamic checks";
    EXPECT_GT(On.Pipeline.CheckOpt.InterProcChecksElided, 0u) << Name;
  }
}

} // namespace
