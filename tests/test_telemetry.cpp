//===- tests/test_telemetry.cpp - telemetry layer unit tests ----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer (docs/observability.md): histogram bucketing
/// edges, the zero-cost disabled mode (attaching telemetry must not
/// change a single deterministic counter), per-site profile determinism
/// and site-ID stability across builds, the facility probe-length
/// histogram on a crafted collision set, and the Chrome-trace export.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "driver/Pipeline.h"
#include "ir/IRPrinter.h"
#include "runtime/HashTableMetadata.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace softbound;

namespace {

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(TelemetryHistogram, BucketEdges) {
  // Bucket 0 holds exactly the value 0; bucket B >= 1 holds
  // [2^(B-1), 2^B - 1].
  EXPECT_EQ(TelemetryHistogram::bucketFor(0), 0u);
  EXPECT_EQ(TelemetryHistogram::bucketFor(1), 1u);
  EXPECT_EQ(TelemetryHistogram::bucketFor(2), 2u);
  EXPECT_EQ(TelemetryHistogram::bucketFor(3), 2u);
  EXPECT_EQ(TelemetryHistogram::bucketFor(4), 3u);
  // Power-of-two boundaries, saturating into the open-ended last bucket.
  constexpr unsigned Last = TelemetryHistogram::NumBuckets - 1;
  for (unsigned K = 1; K < 63; ++K) {
    uint64_t Pow = uint64_t(1) << K;
    EXPECT_EQ(TelemetryHistogram::bucketFor(Pow - 1), std::min(K, Last))
        << "2^" << K << "-1";
    EXPECT_EQ(TelemetryHistogram::bucketFor(Pow), std::min(K + 1, Last))
        << "2^" << K;
  }
  // The last bucket is open-ended.
  EXPECT_EQ(TelemetryHistogram::bucketFor(UINT64_MAX),
            TelemetryHistogram::NumBuckets - 1);
  EXPECT_EQ(TelemetryHistogram::bucketHi(TelemetryHistogram::NumBuckets - 1),
            UINT64_MAX);
  // Lo/hi are consistent with bucketFor on every bucket boundary.
  for (unsigned B = 0; B < TelemetryHistogram::NumBuckets; ++B) {
    EXPECT_EQ(TelemetryHistogram::bucketFor(TelemetryHistogram::bucketLo(B)),
              B);
    EXPECT_EQ(TelemetryHistogram::bucketFor(TelemetryHistogram::bucketHi(B)),
              B);
  }
}

TEST(TelemetryHistogram, RecordAccumulates) {
  TelemetryHistogram H;
  for (uint64_t V : {0, 1, 1, 3, 8})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 13u);
  EXPECT_EQ(H.max(), 8u);
  EXPECT_DOUBLE_EQ(H.mean(), 13.0 / 5.0);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 2u); // 1, 1
  EXPECT_EQ(H.bucketCount(2), 1u); // 3
  EXPECT_EQ(H.bucketCount(4), 1u); // 8
}

//===----------------------------------------------------------------------===//
// Shared workload
//===----------------------------------------------------------------------===//

// Pointer stores and loads (metadata traffic) plus a counted loop (a
// hull-hoisted guarded check), so every site kind shows up.
const char *ProfiledSource =
    "int main() {\n"
    "  int* p = (int*)malloc(64);\n"
    "  int** pp = (int**)malloc(8);\n"
    "  *pp = p;\n"
    "  int* q = *pp;\n"
    "  int s = 0;\n"
    "  for (int i = 0; i < 16; i++) { q[i] = i; s += q[i]; }\n"
    "  return s;\n"
    "}";

BuildResult buildInstrumented(Telemetry *T = nullptr) {
  BuildOptions B;
  B.Instrument = true;
  PipelinePlan Plan = planFromBuildOptions(ProfiledSource, B);
  if (T)
    Plan.telemetry(T, "test:");
  BuildResult Prog = Plan.build();
  EXPECT_TRUE(Prog.ok()) << Prog.errorText();
  return Prog;
}

//===----------------------------------------------------------------------===//
// Zero-cost disabled mode
//===----------------------------------------------------------------------===//

TEST(Telemetry, DisabledModeIsObservationFree) {
  // The same build + run with and without a telemetry sink and a site
  // profile attached must agree on every deterministic counter — the
  // docs/observability.md zero-cost contract, and what keeps the CI
  // bench gate's baselines valid whether or not --profile is passed.
  BuildResult Plain = buildInstrumented();
  RunResult RPlain = runSession(Plain).Combined;

  Telemetry Telem;
  SiteProfile Prof;
  BuildResult Observed = buildInstrumented(&Telem);
  RunOptions Opts;
  Opts.Telem = &Telem;
  Opts.ProfileOut = &Prof;
  Opts.TraceTag = "test:";
  MetadataStats Meta;
  Opts.MetaStatsOut = &Meta;
  RunResult RObs = runSession(Observed, Opts).Combined;

  ASSERT_EQ(RPlain.Trap, RObs.Trap);
  EXPECT_EQ(RPlain.ExitCode, RObs.ExitCode);
  EXPECT_EQ(RPlain.Counters.Insts, RObs.Counters.Insts);
  EXPECT_EQ(RPlain.Counters.Checks, RObs.Counters.Checks);
  EXPECT_EQ(RPlain.Counters.CheckGuards, RObs.Counters.CheckGuards);
  EXPECT_EQ(RPlain.Counters.GuardSkips, RObs.Counters.GuardSkips);
  EXPECT_EQ(RPlain.Counters.MetaLoads, RObs.Counters.MetaLoads);
  EXPECT_EQ(RPlain.Counters.MetaStores, RObs.Counters.MetaStores);
  EXPECT_EQ(RPlain.Counters.Cycles, RObs.Counters.Cycles);

  // And the observed run actually observed something.
  EXPECT_EQ(Telem.counter("vm/checks"), RObs.Counters.Checks);
  EXPECT_EQ(Telem.counter("vm/cycles"), RObs.Counters.Cycles);
  EXPECT_FALSE(Telem.traceEvents().empty());
  uint64_t SiteExecuted = 0;
  for (const auto &SC : Prof.Sites)
    SiteExecuted += SC.Executed;
  EXPECT_GT(SiteExecuted, 0u);
}

//===----------------------------------------------------------------------===//
// Per-site IDs and profiles
//===----------------------------------------------------------------------===//

TEST(Telemetry, SiteIdsAreDeterministicAcrossBuilds) {
  BuildResult A = buildInstrumented();
  BuildResult B = buildInstrumented();
  const auto &SA = A.M->checkSites();
  const auto &SB = B.M->checkSites();
  ASSERT_FALSE(SA.empty());
  ASSERT_EQ(SA.size(), SB.size());
  for (size_t I = 0; I < SA.size(); ++I) {
    EXPECT_EQ(SA[I].Name, SB[I].Name) << "site " << I;
    EXPECT_EQ(SA[I].Kind, SB[I].Kind) << "site " << I;
    EXPECT_EQ(SA[I].Guarded, SB[I].Guarded) << "site " << I;
  }
  // Site names are "<function>#<ordinal>" and unique.
  std::set<std::string> Names;
  for (const auto &S : SA) {
    EXPECT_NE(S.Name.find('#'), std::string::npos) << S.Name;
    EXPECT_TRUE(Names.insert(S.Name).second) << "duplicate " << S.Name;
  }
  // Re-assignment is idempotent: IDs and table entries survive.
  size_t Before = SA.size();
  EXPECT_EQ(A.M->assignCheckSites(), Before);
  EXPECT_EQ(A.M->checkSites().size(), Before);
  for (size_t I = 0; I < Before; ++I)
    EXPECT_EQ(A.M->checkSites()[I].Name, SB[I].Name);
}

TEST(Telemetry, SiteProfilesAreIdenticalAcrossRuns) {
  BuildResult Prog = buildInstrumented();
  auto RunProfiled = [&] {
    SiteProfile P;
    RunOptions Opts;
    Opts.ProfileOut = &P;
    RunResult R = runSession(Prog, Opts).Combined;
    EXPECT_TRUE(R.ok()) << R.Message;
    return P.Sites;
  };
  std::vector<SiteCounters> R1 = RunProfiled();
  std::vector<SiteCounters> R2 = RunProfiled();
  ASSERT_EQ(R1.size(), R2.size());
  ASSERT_EQ(R1.size(), Prog.M->checkSites().size());
  for (size_t I = 0; I < R1.size(); ++I) {
    EXPECT_EQ(R1[I].Executed, R2[I].Executed) << "site " << I;
    EXPECT_EQ(R1[I].GuardElided, R2[I].GuardElided) << "site " << I;
    EXPECT_EQ(R1[I].FallbackFired, R2[I].FallbackFired) << "site " << I;
    EXPECT_EQ(R1[I].Traps, R2[I].Traps) << "site " << I;
  }
}

TEST(Telemetry, SiteTagsPrintAndStayStable) {
  BuildResult Prog = buildInstrumented();
  std::string Printed = printModule(*Prog.M);
  // Every assigned site appears as a ", site N" tag on its instruction,
  // and printing is stable (the IRPrinter golden-file contract).
  for (size_t I = 0; I < Prog.M->checkSites().size(); ++I)
    EXPECT_NE(Printed.find(", site " + std::to_string(I)),
              std::string::npos)
        << "site " << I << " missing from printed IR";
  EXPECT_EQ(Printed, printModule(*Prog.M));
}

//===----------------------------------------------------------------------===//
// Facility probe-length histogram
//===----------------------------------------------------------------------===//

TEST(Telemetry, HashProbeHistogramOnCraftedCollisions) {
  // hash() multiplies (Addr >> 3) by an odd constant and masks by the
  // table size, so addresses whose slot indices differ by a multiple of
  // the table size land in the same bucket: with a 2^16-entry table,
  // stride (2^16) << 3. Four such inserts then four lookups walk probe
  // chains of exactly 1, 2, 3, 4 slots — twice.
  HashTableMetadata M(16);
  Telemetry Telem;
  M.attachTelemetry(&Telem, "facility/hashtable");
  const TelemetryHistogram &H =
      Telem.histogram("facility/hashtable/probe_length");
  constexpr uint64_t Base = 0x4000'0000;
  constexpr uint64_t Stride = uint64_t(1) << 19;
  for (uint64_t I = 0; I < 4; ++I)
    M.update(Base + I * Stride, I, I + 64);
  for (uint64_t I = 0; I < 4; ++I)
    EXPECT_EQ(M.lookup(Base + I * Stride).Base, I);
  EXPECT_EQ(H.count(), 8u);
  EXPECT_EQ(H.sum(), 20u); // 2 * (1 + 2 + 3 + 4)
  EXPECT_EQ(H.max(), 4u);
  EXPECT_EQ(H.bucketCount(1), 2u); // probe length 1
  EXPECT_EQ(H.bucketCount(2), 4u); // lengths 2 and 3
  EXPECT_EQ(H.bucketCount(3), 2u); // length 4
  EXPECT_EQ(M.stats().Collisions, 12u); // 2 * (0 + 1 + 2 + 3)

  // flushTelemetry publishes the occupancy counters.
  M.flushTelemetry();
  EXPECT_EQ(Telem.counter("facility/hashtable/live_entries"), 4u);
  EXPECT_EQ(Telem.counter("facility/hashtable/table_entries"),
            uint64_t(1) << 16);

  // Detaching restores the disabled mode: no further recording.
  M.attachTelemetry(nullptr, "");
  M.lookup(Base);
  EXPECT_EQ(H.count(), 8u);
}

//===----------------------------------------------------------------------===//
// Trace export
//===----------------------------------------------------------------------===//

TEST(Telemetry, ChromeTraceJsonIsWellFormed) {
  Telemetry Telem;
  SiteProfile Prof;
  BuildResult Prog = buildInstrumented(&Telem);
  RunOptions Opts;
  Opts.Telem = &Telem;
  Opts.ProfileOut = &Prof;
  Opts.TraceTag = "test:";
  RunResult R = runSession(Prog, Opts).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;

  // Pipeline timings flowed into the shared registry.
  EXPECT_FALSE(Telem.timersMs().empty());
  EXPECT_GT(Telem.timersMs().count("test:pass/softbound"), 0u);

  benchjson::JsonValue Doc;
  ASSERT_TRUE(benchjson::parseJson(Telem.chromeTraceJson(), Doc));
  const benchjson::JsonValue *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_FALSE(Events->Arr.empty());
  bool SawPipeline = false, SawVM = false;
  for (const auto &E : Events->Arr) {
    ASSERT_TRUE(E.isObject());
    EXPECT_EQ(E.get("ph")->Str, "X");
    ASSERT_NE(E.get("cat"), nullptr);
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_TRUE(E.get("ts")->isNumber());
    ASSERT_TRUE(E.get("dur")->isNumber());
    if (E.get("cat")->Str == "pipeline") {
      SawPipeline = true;
      EXPECT_EQ(E.get("tid")->asInt(), Telemetry::TidPipeline);
    }
    if (E.get("cat")->Str == "vm") {
      SawVM = true;
      EXPECT_EQ(E.get("tid")->asInt(), Telemetry::TidVM);
      // VM timestamps are simulated cycles: the whole-run event's
      // duration is exactly the cycle count.
      if (E.get("name")->Str == "test:run:main")
        EXPECT_EQ(static_cast<uint64_t>(E.get("dur")->asInt()),
                  R.Counters.Cycles);
    }
  }
  EXPECT_TRUE(SawPipeline);
  EXPECT_TRUE(SawVM);
}

} // namespace
