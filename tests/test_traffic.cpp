//===- tests/test_traffic.cpp - sustained-traffic server tier --------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traffic-tier coverage (docs/runtime.md "Traffic tier"):
///
///  - schedule determinism: one seed → byte-identical request streams,
///    and re-running the generated driver reproduces the per-request
///    counter stream exactly;
///  - zero missed detections when attack payloads arrive mid-stream, at
///    1/2/4 lanes, sharded and lock-free;
///  - post-trap isolation: a contained violation leaves every later
///    request's counters identical to a trap-free run of the same
///    suffix;
///  - 1-lane traffic totals equal the sum of single-shot runs over the
///    same request list (per-request gate metrics, checkopt disabled so
///    loop hoisting cannot smear preheader work across windows);
///  - the write-heavy seqlock path under connection churn: retries are
///    live in the protocol, reads ride the seqlock, and the read phase
///    acquires zero locks under LockFreeRead with concurrent lanes.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "workloads/Traffic.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace softbound;

namespace {

const ServerKind BothServers[] = {ServerKind::Http, ServerKind::Ftp};

TrafficConfig smallConfig(unsigned Requests, unsigned AttackPerMille) {
  TrafficConfig C;
  C.Requests = Requests;
  C.AttackPerMille = AttackPerMille;
  return C;
}

BuildResult buildTraffic(const std::string &Src, CheckMode Mode,
                         bool CheckOpt = true) {
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = Mode;
  B.CheckOpt.Enable = CheckOpt;
  return buildProgram(Src, B);
}

RunRequest sessionReq(unsigned Lanes, unsigned Shards = 1,
                      bool LockFree = false) {
  RunRequest R;
  R.Lanes = Lanes;
  R.FacilityShards = Shards;
  R.LockFreeReads = LockFree;
  return R;
}

TrafficReport reportFor(const TrafficSchedule &S, const RunResult &Lane) {
  ShadowSpaceMetadata Costs;
  return TrafficReport::fromSamples(S.Requests, Lane.Requests,
                                    Costs.lookupCost(), Costs.updateCost());
}

void expectSameWindow(const RequestSample &A, const RequestSample &B,
                      size_t I) {
  EXPECT_EQ(A.Trap, B.Trap) << "request " << I;
  EXPECT_EQ(A.Delta.Insts, B.Delta.Insts) << "request " << I;
  EXPECT_EQ(A.Delta.Loads, B.Delta.Loads) << "request " << I;
  EXPECT_EQ(A.Delta.Stores, B.Delta.Stores) << "request " << I;
  EXPECT_EQ(A.Delta.Checks, B.Delta.Checks) << "request " << I;
  EXPECT_EQ(A.Delta.CheckGuards, B.Delta.CheckGuards) << "request " << I;
  EXPECT_EQ(A.Delta.GuardSkips, B.Delta.GuardSkips) << "request " << I;
  EXPECT_EQ(A.Delta.MetaLoads, B.Delta.MetaLoads) << "request " << I;
  EXPECT_EQ(A.Delta.MetaStores, B.Delta.MetaStores) << "request " << I;
  EXPECT_EQ(A.Delta.Calls, B.Delta.Calls) << "request " << I;
  EXPECT_EQ(A.Delta.Cycles, B.Delta.Cycles) << "request " << I;
}

//===----------------------------------------------------------------------===//
// Schedule determinism
//===----------------------------------------------------------------------===//

TEST(TrafficSchedule, SameSeedSameStreamDifferentSeedDiffers) {
  for (ServerKind K : BothServers) {
    TrafficConfig C = smallConfig(200, 40);
    TrafficSchedule A = TrafficSchedule::generate(K, C);
    TrafficSchedule B = TrafficSchedule::generate(K, C);
    ASSERT_EQ(A.Requests.size(), 200u);
    ASSERT_EQ(B.Requests.size(), 200u);
    for (size_t I = 0; I < A.Requests.size(); ++I) {
      EXPECT_EQ(A.Requests[I].Text, B.Requests[I].Text);
      EXPECT_EQ(A.Requests[I].ConnStart, B.Requests[I].ConnStart);
      EXPECT_EQ(A.Requests[I].Adversarial, B.Requests[I].Adversarial);
    }
    EXPECT_GT(A.adversarialCount(), 0u);
    EXPECT_LT(A.adversarialCount(), 200u);
    EXPECT_TRUE(A.Requests.front().ConnStart);

    C.Seed = 65;
    TrafficSchedule D = TrafficSchedule::generate(K, C);
    bool Differs = false;
    for (size_t I = 0; I < D.Requests.size(); ++I)
      Differs |= D.Requests[I].Text != A.Requests[I].Text;
    EXPECT_TRUE(Differs);
  }
}

TEST(TrafficSchedule, DriverRunsAreCounterIdentical) {
  for (ServerKind K : BothServers) {
    TrafficSchedule S = TrafficSchedule::generate(K, smallConfig(120, 60));
    BuildResult Prog = buildTraffic(S.driverSource(true), CheckMode::Full);
    SessionResult R1 = runSession(Prog, sessionReq(1));
    SessionResult R2 = runSession(Prog, sessionReq(1));
    ASSERT_TRUE(R1.ok()) << R1.Combined.Message;
    // One prologue sample + one sample per request.
    ASSERT_EQ(R1.Combined.Requests.size(), S.Requests.size() + 1);
    ASSERT_EQ(R2.Combined.Requests.size(), S.Requests.size() + 1);
    EXPECT_EQ(R1.Combined.Output, R2.Combined.Output);
    EXPECT_EQ(R1.Combined.ExitCode, 0);
    for (size_t I = 0; I < R1.Combined.Requests.size(); ++I)
      expectSameWindow(R1.Combined.Requests[I], R2.Combined.Requests[I], I);
  }
}

//===----------------------------------------------------------------------===//
// Detection under sustained traffic
//===----------------------------------------------------------------------===//

TEST(TrafficDetection, ZeroMissedAtEveryLaneCount) {
  struct LaneSetup {
    unsigned Lanes, Shards;
    bool LockFree;
  } Setups[] = {{1, 1, false}, {2, 4, false}, {4, 4, false}, {4, 4, true}};
  for (ServerKind K : BothServers) {
    TrafficSchedule S = TrafficSchedule::generate(K, smallConfig(160, 80));
    ASSERT_GT(S.adversarialCount(), 0u);
    for (CheckMode Mode : {CheckMode::Full, CheckMode::StoreOnly}) {
      BuildResult Prog = buildTraffic(S.driverSource(true), Mode);
      for (const LaneSetup &L : Setups) {
        SessionResult R =
            runSession(Prog, sessionReq(L.Lanes, L.Shards, L.LockFree));
        // Every violation is contained inside its request window: the
        // session itself must finish trap-free in every lane.
        ASSERT_TRUE(R.ok()) << serverKindName(K) << " lanes=" << L.Lanes
                            << ": " << R.Combined.Message;
        ASSERT_EQ(R.PerLane.size(), L.Lanes);
        for (const RunResult &Lane : R.PerLane) {
          TrafficReport Rep = reportFor(S, Lane);
          EXPECT_EQ(Rep.Requests, S.Requests.size());
          EXPECT_EQ(Rep.Adversarial, S.adversarialCount());
          EXPECT_EQ(Rep.Missed, 0u)
              << serverKindName(K) << " lanes=" << L.Lanes;
          EXPECT_EQ(Rep.FalseTraps, 0u)
              << serverKindName(K) << " lanes=" << L.Lanes;
          EXPECT_EQ(Rep.Trapped, Rep.Adversarial);
        }
      }
    }
  }
}

TEST(TrafficDetection, BenignTrafficIsFalsePositiveFree) {
  for (ServerKind K : BothServers) {
    TrafficSchedule S = TrafficSchedule::generate(K, smallConfig(150, 0));
    ASSERT_EQ(S.adversarialCount(), 0u);
    BuildOptions Plain;
    SessionResult P =
        runSession(buildProgram(S.driverSource(false), Plain), sessionReq(1));
    SessionResult F = runSession(
        buildTraffic(S.driverSource(false), CheckMode::Full), sessionReq(1));
    ASSERT_TRUE(P.ok());
    ASSERT_TRUE(F.ok());
    // §6.4 under traffic: checked output is byte-identical to unchecked.
    EXPECT_EQ(P.Combined.Output, F.Combined.Output);
    EXPECT_EQ(P.Combined.ExitCode, F.Combined.ExitCode);
    EXPECT_EQ(reportFor(S, F.Combined).Trapped, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Post-trap isolation
//===----------------------------------------------------------------------===//

TEST(TrafficIsolation, TrappedRequestLeavesSuffixCountersUntouched) {
  for (ServerKind K : BothServers) {
    // Single-request connections so every request is state-independent.
    TrafficConfig C = smallConfig(41, 0);
    C.SessionMin = C.SessionMax = 1;
    TrafficSchedule S = TrafficSchedule::generate(K, C);
    std::vector<TrafficRequest> WithAttack = S.Requests;
    TrafficRequest Attack;
    Attack.Text = K == ServerKind::Http
                      ? "GET /cgi-bin/form?token=" + std::string(48, 'Z') +
                            " HTTP/1.0"
                      : "USER " + std::string(40, 'z');
    Attack.ConnStart = true;
    Attack.Adversarial = true;
    const size_t AttackAt = 20;
    WithAttack[AttackAt] = Attack;

    SessionResult A = runSession(
        buildTraffic(trafficDriverSource(K, WithAttack, true), CheckMode::Full),
        sessionReq(1));
    SessionResult B = runSession(
        buildTraffic(trafficDriverSource(K, S.Requests, true), CheckMode::Full),
        sessionReq(1));
    ASSERT_TRUE(A.ok()) << A.Combined.Message;
    ASSERT_TRUE(B.ok()) << B.Combined.Message;
    ASSERT_EQ(A.Combined.Requests.size(), WithAttack.size() + 1);
    ASSERT_EQ(B.Combined.Requests.size(), S.Requests.size() + 1);

    EXPECT_EQ(A.Combined.Requests[AttackAt + 1].Trap,
              TrapKind::SpatialViolation);
    // Every window after the trapped one matches the trap-free run of
    // the same suffix, field for field.
    for (size_t I = AttackAt + 2; I < A.Combined.Requests.size(); ++I)
      expectSameWindow(A.Combined.Requests[I], B.Combined.Requests[I], I);
    // And the prefix was identical to begin with.
    for (size_t I = 0; I <= AttackAt; ++I)
      expectSameWindow(A.Combined.Requests[I], B.Combined.Requests[I], I);
  }
}

//===----------------------------------------------------------------------===//
// Traffic totals vs single-shot runs
//===----------------------------------------------------------------------===//

TEST(TrafficTotals, OneLaneTotalsEqualSumOfSingleShots) {
  for (ServerKind K : BothServers) {
    TrafficConfig C = smallConfig(30, 120);
    C.SessionMin = C.SessionMax = 1; // state-independent requests
    TrafficSchedule S = TrafficSchedule::generate(K, C);
    // Checkopt off: loop hoisting would run hull setup once for the
    // whole traffic loop but once per single-shot program, smearing
    // preheader checks across windows. Without it the per-window gate
    // metrics (checks, metadata ops, guard evals, sim cost) are exactly
    // additive.
    SessionResult T = runSession(
        buildTraffic(S.driverSource(true), CheckMode::Full, false),
        sessionReq(1));
    ASSERT_TRUE(T.ok()) << T.Combined.Message;
    ASSERT_EQ(T.Combined.Requests.size(), S.Requests.size() + 1);

    uint64_t SumChecks = 0, SumMetaLoads = 0, SumMetaStores = 0,
             SumGuards = 0;
    for (size_t I = 0; I < S.Requests.size(); ++I) {
      std::vector<TrafficRequest> One = {S.Requests[I]};
      SessionResult Single = runSession(
          buildTraffic(trafficDriverSource(K, One, true), CheckMode::Full,
                       false),
          sessionReq(1));
      ASSERT_TRUE(Single.ok()) << Single.Combined.Message;
      ASSERT_EQ(Single.Combined.Requests.size(), 2u);
      const RequestSample &SS = Single.Combined.Requests[1];
      const RequestSample &TS = T.Combined.Requests[I + 1];
      EXPECT_EQ(SS.Trap, TS.Trap) << "request " << I;
      EXPECT_EQ(SS.Delta.Checks, TS.Delta.Checks) << "request " << I;
      EXPECT_EQ(SS.Delta.MetaLoads, TS.Delta.MetaLoads) << "request " << I;
      EXPECT_EQ(SS.Delta.MetaStores, TS.Delta.MetaStores) << "request " << I;
      EXPECT_EQ(SS.Delta.CheckGuards, TS.Delta.CheckGuards) << "request " << I;
      SumChecks += SS.Delta.Checks;
      SumMetaLoads += SS.Delta.MetaLoads;
      SumMetaStores += SS.Delta.MetaStores;
      SumGuards += SS.Delta.CheckGuards;
    }
    TrafficReport Rep = reportFor(S, T.Combined);
    EXPECT_EQ(Rep.Checks, SumChecks);
    EXPECT_EQ(Rep.MetaOps, SumMetaLoads + SumMetaStores);
    EXPECT_EQ(Rep.GuardEvals, SumGuards);
    ShadowSpaceMetadata Costs;
    EXPECT_EQ(Rep.SimCost, SumChecks * 3 + SumMetaLoads * Costs.lookupCost() +
                               SumMetaStores * Costs.updateCost() + SumGuards);
  }
}

//===----------------------------------------------------------------------===//
// Write-heavy seqlock path under traffic (satellite: LockFreeRead)
//===----------------------------------------------------------------------===//

TEST(TrafficSeqlock, RetryProtocolIsLive) {
  StripeSeqlock SL;
  uint64_t S0 = SL.readBegin();
  EXPECT_EQ(SL.Reads.load(), 1u);
  EXPECT_TRUE(SL.readValidate(S0));
  // A write window racing the read forces a counted retry.
  uint64_t S1 = SL.readBegin();
  SL.writeBegin();
  SL.writeEnd();
  EXPECT_FALSE(SL.readValidate(S1));
  EXPECT_GE(SL.Retries.load(), 1u);
}

TEST(TrafficSeqlock, ReadPhaseAcquiresNoLocksUnderChurnTraffic) {
  // Heavy connection churn: every request opens a connection, so the
  // FTP driver rewrites shared session globals (metadata writes via
  // frame churn) while every check's lookup rides the read path.
  TrafficConfig C = smallConfig(200, 50);
  C.SessionMin = C.SessionMax = 1;
  TrafficSchedule S = TrafficSchedule::generate(ServerKind::Ftp, C);
  BuildResult Prog = buildTraffic(S.driverSource(true), CheckMode::Full);

  // Deterministic 1-lane A/B: the only difference between Sharded and
  // LockFreeRead lock-acquire counts must be exactly the lookups —
  // i.e. the read phase acquires zero locks under LockFreeRead.
  SessionResult Sharded = runSession(Prog, sessionReq(1, 4, false));
  SessionResult LockFree = runSession(Prog, sessionReq(1, 4, true));
  ASSERT_TRUE(Sharded.ok());
  ASSERT_TRUE(LockFree.ok());
  ASSERT_GT(LockFree.Meta.Lookups, 0u);
  EXPECT_EQ(Sharded.Meta.Lookups, LockFree.Meta.Lookups);
  EXPECT_EQ(LockFree.Meta.LockAcquires,
            Sharded.Meta.LockAcquires - Sharded.Meta.Lookups);
  EXPECT_EQ(LockFree.Meta.SeqlockReads, LockFree.Meta.Lookups);

  // Concurrent request lanes: reads stay on the seqlock (every lookup
  // counted there), only the write path acquires locks — the same
  // 4-lane run under Sharded pays an acquire per lookup on top, and
  // nothing is missed.
  SessionResult MT = runSession(Prog, sessionReq(4, 4, true));
  SessionResult MTSharded = runSession(Prog, sessionReq(4, 4, false));
  ASSERT_TRUE(MT.ok()) << MT.Combined.Message;
  ASSERT_TRUE(MTSharded.ok()) << MTSharded.Combined.Message;
  EXPECT_GT(MT.Meta.Lookups, 0u);
  EXPECT_GE(MT.Meta.SeqlockReads, MT.Meta.Lookups);
  EXPECT_EQ(MTSharded.Meta.SeqlockReads, 0u);
  EXPECT_GT(MTSharded.Meta.LockAcquires, MT.Meta.LockAcquires);
  // Retries are priced like contended acquires in the sim-cost model.
  EXPECT_EQ(MT.Meta.contentionSimCost(),
            (MT.Meta.LockAcquires - MT.Meta.LockContended) *
                    UncontendedLockCost +
                MT.Meta.LockContended * ContendedLockCost +
                MT.Meta.SeqlockRetries * SeqlockRetryCost);
  for (const RunResult &Lane : MT.PerLane)
    EXPECT_EQ(reportFor(S, Lane).Missed, 0u);
}

//===----------------------------------------------------------------------===//
// Multi-lane per-request streams
//===----------------------------------------------------------------------===//

TEST(TrafficLanes, HttpLaneStreamsMatchTheSingleLaneRun) {
  // The HTTP handler touches no shared mutable strings (only counter
  // adds), so every lane's per-request stream must be byte-identical to
  // the 1-lane stream even under concurrent execution.
  TrafficSchedule S =
      TrafficSchedule::generate(ServerKind::Http, smallConfig(120, 60));
  BuildResult Prog = buildTraffic(S.driverSource(true), CheckMode::Full);
  SessionResult One = runSession(Prog, sessionReq(1));
  SessionResult Four = runSession(Prog, sessionReq(4, 4, true));
  ASSERT_TRUE(One.ok());
  ASSERT_TRUE(Four.ok()) << Four.Combined.Message;
  ASSERT_EQ(Four.PerLane.size(), 4u);
  for (const RunResult &Lane : Four.PerLane) {
    ASSERT_EQ(Lane.Requests.size(), One.Combined.Requests.size());
    for (size_t I = 0; I < Lane.Requests.size(); ++I)
      expectSameWindow(Lane.Requests[I], One.Combined.Requests[I], I);
  }
  // The combined stream is the elementwise lane sum.
  ASSERT_EQ(Four.Combined.Requests.size(), One.Combined.Requests.size());
  for (size_t I = 0; I < Four.Combined.Requests.size(); ++I) {
    EXPECT_EQ(Four.Combined.Requests[I].Delta.Checks,
              4 * One.Combined.Requests[I].Delta.Checks);
    EXPECT_EQ(Four.Combined.Requests[I].Trap, One.Combined.Requests[I].Trap);
  }
}

} // namespace
