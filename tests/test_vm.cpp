//===- tests/test_vm.cpp - VM substrate unit tests --------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the execution substrate: the simulated memory's heap
/// allocator (adjacency, free-list reuse, red-zone padding), segment
/// fault behaviour, and the VM's control-data corruption detection that
/// the attack suite relies on.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "vm/SimMemory.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

//===----------------------------------------------------------------------===//
// SimMemory
//===----------------------------------------------------------------------===//

TEST(SimMemory, SegmentsAndFaults) {
  SimMemory M(1 << 20, 1 << 20, 1 << 20);
  uint64_t V = 0;
  // Null page and random low addresses are unmapped.
  EXPECT_FALSE(M.read(0, 8, V));
  EXPECT_FALSE(M.write(0x10, 8, 1));
  // Globals are mapped from GlobalBase.
  EXPECT_TRUE(M.write(simlayout::GlobalBase, 8, 0x1234));
  EXPECT_TRUE(M.read(simlayout::GlobalBase, 8, V));
  EXPECT_EQ(V, 0x1234u);
  // Straddling a segment end faults.
  EXPECT_FALSE(M.read(simlayout::GlobalBase + (1 << 20) - 4, 8, V));
}

TEST(SimMemory, SubWordAccessLittleEndian) {
  SimMemory M(1 << 16, 1 << 16, 1 << 16);
  ASSERT_TRUE(M.write(simlayout::HeapBase, 8, 0x0102030405060708ULL));
  uint64_t B = 0;
  ASSERT_TRUE(M.read(simlayout::HeapBase, 1, B));
  EXPECT_EQ(B, 0x08u);
  ASSERT_TRUE(M.read(simlayout::HeapBase + 7, 1, B));
  EXPECT_EQ(B, 0x01u);
  ASSERT_TRUE(M.read(simlayout::HeapBase + 2, 2, B));
  EXPECT_EQ(B, 0x0506u);
}

TEST(SimMemory, HeapAdjacencyIsDeterministic) {
  // The attack suite depends on consecutive mallocs being adjacent
  // (16-byte aligned, no headers).
  SimMemory M(1 << 16, 1 << 20, 1 << 16);
  uint64_t A = M.heapAlloc(16);
  uint64_t B = M.heapAlloc(8);
  uint64_t C = M.heapAlloc(24);
  EXPECT_EQ(B, A + 16);
  EXPECT_EQ(C, B + 16); // 8 rounds up to 16.
}

TEST(SimMemory, FreeListReusesFirstFit) {
  SimMemory M(1 << 16, 1 << 20, 1 << 16);
  uint64_t A = M.heapAlloc(64);
  M.heapAlloc(16); // Keep the bump pointer moving.
  EXPECT_EQ(M.heapFree(A), 64u);
  // Same-size allocation reuses the freed block (stale-metadata test
  // depends on this).
  EXPECT_EQ(M.heapAlloc(64), A);
  // Splitting: a smaller allocation carves the front of a freed block.
  uint64_t D = M.heapAlloc(128);
  M.heapFree(D);
  EXPECT_EQ(M.heapAlloc(32), D);
  EXPECT_EQ(M.heapAlloc(32), D + 32);
}

TEST(SimMemory, RedzonePaddingSeparatesBlocks) {
  SimMemory M(1 << 16, 1 << 20, 1 << 16);
  uint64_t A = M.heapAlloc(16, /*RedzonePad=*/16);
  uint64_t B = M.heapAlloc(16, /*RedzonePad=*/16);
  EXPECT_GE(B - A, 32u);
  // The gap belongs to no live block.
  EXPECT_EQ(M.heapBlockContaining(A + 20).second, 0u);
  EXPECT_EQ(M.heapBlockContaining(A + 4).first, A);
}

TEST(SimMemory, InvalidFreeReported) {
  SimMemory M(1 << 16, 1 << 20, 1 << 16);
  uint64_t A = M.heapAlloc(16);
  EXPECT_EQ(M.heapFree(A + 4), UINT64_MAX); // Interior pointer.
  EXPECT_EQ(M.heapFree(A), 16u);
  EXPECT_EQ(M.heapFree(A), UINT64_MAX); // Double free.
}

//===----------------------------------------------------------------------===//
// VM control-data integrity (the attack substrate)
//===----------------------------------------------------------------------===//

TEST(VMControlData, GarbageReturnAddressIsACrash) {
  // Corrupting the return word with a non-function value is a crash
  // (CorruptedReturn), not a hijack.
  RunResult R = runSession(planFromBuildOptions("int f() {\n"
                              "  char buf[16];\n"
                              "  long* w = (long*)buf;\n"
                              "  w[3] = 0x41414141;\n"
                              "  return 1;\n"
                              "}\n"
                              "int main() { return f(); }",
                              BuildOptions{}))
                    .Combined;
  EXPECT_EQ(R.Trap, TrapKind::CorruptedReturn) << trapName(R.Trap);
}

TEST(VMControlData, FunctionAddressInReturnSlotHijacks) {
  RunResult R = runSession(planFromBuildOptions("int pay(int x) { return x; }\n"
      "int f() {\n"
      "  char buf[16];\n"
      "  long* w = (long*)buf;\n"
      "  w[3] = (long)pay;\n"
      "  return 1;\n"
      "}\n"
      "int main() { return f(); }", BuildOptions{})).Combined;
  EXPECT_EQ(R.Trap, TrapKind::Hijacked);
  EXPECT_EQ(R.HijackTarget, "pay");
}

TEST(VMControlData, CorruptedJmpBufMagicTraps) {
  RunResult R = runSession(planFromBuildOptions("long jb[4];\n"
                              "int main() {\n"
                              "  if (setjmp(jb) != 0) return 7;\n"
                              "  jb[0] = 12345;\n" // Smash the magic.
                              "  longjmp(jb, 1);\n"
                              "  return 0;\n"
                              "}", BuildOptions{})).Combined;
  EXPECT_EQ(R.Trap, TrapKind::CorruptedJmpBuf);
}

TEST(VMControlData, LongjmpToDeadFrameTraps) {
  RunResult R = runSession(planFromBuildOptions("long jb[4];\n"
                              "int arm() { return setjmp(jb); }\n"
                              "int main() {\n"
                              "  arm();\n" // The armed frame returns.
                              "  longjmp(jb, 1);\n"
                              "  return 0;\n"
                              "}", BuildOptions{})).Combined;
  EXPECT_EQ(R.Trap, TrapKind::CorruptedJmpBuf);
}

TEST(VMControlData, DeepRecursionHitsStackGuard) {
  RunResult R = runSession(planFromBuildOptions("int down(int n) {\n"
                              "  long pad[64];\n"
                              "  pad[0] = n;\n"
                              "  if (n == 0) return 0;\n"
                              "  return down(n - 1) + (int)pad[0];\n"
                              "}\n"
                              "int main() { return down(1000000); }",
                              BuildOptions{}))
                    .Combined;
  EXPECT_EQ(R.Trap, TrapKind::StackOverflow);
}

TEST(VMCounters, CycleModelComponentsAdd) {
  // Instrumented cycles = base + 3 per check + 5 per shadow metadata op.
  const char *Src = "int main() {\n"
                    "  long* p = (long*)malloc(80);\n"
                    "  long* q;\n"
                    "  for (int i = 0; i < 10; i++) p[i] = i;\n"
                    "  q = p;\n"
                    "  return (int)q[9];\n"
                    "}";
  RunResult Plain =
      runSession(planFromBuildOptions(Src, BuildOptions{})).Combined;
  BuildOptions B;
  B.Instrument = true;
  RunResult SB = runSession(planFromBuildOptions(Src, B)).Combined;
  ASSERT_TRUE(Plain.ok() && SB.ok()) << SB.Message;
  EXPECT_EQ(SB.ExitCode, 9);
  uint64_t Expected = SB.Counters.Insts + 3 * SB.Counters.Checks +
                      5 * (SB.Counters.MetaLoads + SB.Counters.MetaStores);
  // Builtin costs (malloc) and frame metadata clearing add a remainder;
  // the modeled components must account for the bulk.
  EXPECT_GE(SB.Counters.Cycles, Expected);
  EXPECT_LT(SB.Counters.Cycles, Expected + 200);
}

TEST(VMCounters, MaxFrameDepthTracksRecursion) {
  RunResult R = runSession(planFromBuildOptions("int f(int n) {\n"
                              "  if (n == 0) return 0;\n"
                              "  return f(n - 1) + 1;\n"
                              "}\n"
                              "int main() { return f(40); }",
                              BuildOptions{}))
                    .Combined;
  EXPECT_EQ(R.ExitCode, 40);
  EXPECT_GE(R.Counters.MaxFrameDepth, 41u);
}

} // namespace
