//===- tests/test_docs.cpp - documentation drift gate -----------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keeps docs/ from rotting: the pass and knob tables in docs/pipeline.md
/// (between `<!-- drift:... -->` markers) must name exactly the passes
/// and knobs the live PassRegistry exposes, in both directions — a pass
/// or knob added, renamed, or removed without a doc update fails here,
/// and a documented name that no longer parses fails too. Also pins the
/// README-defers-to-docs structure.
///
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"
#include "runtime/MetadataFacility.h"
#include "support/Telemetry.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace softbound;

namespace {

#ifndef SB_SOURCE_DIR
#error "SB_SOURCE_DIR must point at the repository root"
#endif

std::string readFile(const std::string &Rel) {
  std::ifstream In(std::string(SB_SOURCE_DIR) + "/" + Rel);
  EXPECT_TRUE(In.good()) << "cannot open " << Rel;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The lines between `<!-- drift:Tag -->` and the next `<!-- /drift` line.
std::vector<std::string> driftRegion(const std::string &Doc,
                                     const std::string &Tag) {
  std::string Open = "<!-- drift:" + Tag + " -->";
  size_t B = Doc.find(Open);
  if (B == std::string::npos)
    return {};
  B += Open.size();
  size_t E = Doc.find("<!-- /drift", B);
  if (E == std::string::npos)
    return {};
  std::vector<std::string> Lines;
  std::istringstream SS(Doc.substr(B, E - B));
  for (std::string Line; std::getline(SS, Line);)
    Lines.push_back(Line);
  return Lines;
}

/// First-column backticked identifier of a markdown table row, or "".
std::string firstCell(const std::string &Line) {
  size_t Tick = Line.find("| `");
  if (Tick != 0)
    return "";
  size_t B = Line.find('`') + 1;
  size_t E = Line.find('`', B);
  if (E == std::string::npos)
    return "";
  return Line.substr(B, E - B);
}

std::set<std::string> firstColumn(const std::vector<std::string> &Region) {
  std::set<std::string> Names;
  for (const auto &Line : Region) {
    std::string N = firstCell(Line);
    if (!N.empty())
      Names.insert(N);
  }
  return Names;
}

std::string joined(const std::set<std::string> &S) {
  std::string Out;
  for (const auto &N : S)
    Out += N + " ";
  return Out;
}

TEST(DocsDrift, PassTableMatchesRegistry) {
  std::string Doc = readFile("docs/pipeline.md");
  std::set<std::string> Documented = firstColumn(driftRegion(Doc, "passes"));
  ASSERT_FALSE(Documented.empty())
      << "docs/pipeline.md lost its drift:passes table";

  std::set<std::string> Registered;
  for (const auto &N : PassRegistry::global().names())
    Registered.insert(N);

  EXPECT_EQ(Documented, Registered)
      << "docs/pipeline.md pass table != PassRegistry\n  documented: "
      << joined(Documented) << "\n  registered: " << joined(Registered);
}

TEST(DocsDrift, KnobTablesMatchRegistry) {
  std::string Doc = readFile("docs/pipeline.md");
  // Every pass that accepts knobs must have a drift-checked knob table,
  // and each table must name exactly the registry's knob list.
  for (const auto &Name : PassRegistry::global().names()) {
    const PassRegistry::Entry *E = PassRegistry::global().lookup(Name);
    ASSERT_NE(E, nullptr) << Name;
    std::set<std::string> Documented =
        firstColumn(driftRegion(Doc, "knobs " + Name));
    if (E->Knobs.empty()) {
      EXPECT_TRUE(Documented.empty())
          << Name << " takes no knobs but has a knob table";
      continue;
    }
    std::set<std::string> Registered(E->Knobs.begin(), E->Knobs.end());
    EXPECT_EQ(Documented, Registered)
        << "docs/pipeline.md '" << Name
        << "' knob table != registry\n  documented: " << joined(Documented)
        << "\n  registered: " << joined(Registered);
  }
}

TEST(DocsDrift, DocumentedCheckOptKnobsActuallyParse) {
  // The registry's knob *list* is only diagnostics; tie each documented
  // knob to the real CheckOptConfig parser by constructing a pass with
  // it. A doc'd knob the parser rejects — or a phantom knob it accepts —
  // is drift of the worst kind.
  std::string Doc = readFile("docs/pipeline.md");
  for (const auto &Knob : firstColumn(driftRegion(Doc, "knobs checkopt"))) {
    std::string Err;
    auto P = PassRegistry::global().create("checkopt", {Knob}, Err);
    EXPECT_NE(P, nullptr) << "documented checkopt knob '" << Knob
                          << "' no longer parses: " << Err;
  }
  std::string Err;
  EXPECT_EQ(PassRegistry::global().create("checkopt", {"no-such-knob"}, Err),
            nullptr);
}

TEST(DocsDrift, ReadmeDefersToDocs) {
  std::string Readme = readFile("README.md");
  EXPECT_NE(Readme.find("docs/pipeline.md"), std::string::npos)
      << "README must point at the pipeline doc";
  EXPECT_NE(Readme.find("docs/checkopt.md"), std::string::npos)
      << "README must point at the check-optimization doc";
  // The README stays a map, not a book.
  size_t Lines = static_cast<size_t>(
      std::count(Readme.begin(), Readme.end(), '\n'));
  EXPECT_LE(Lines, 200u) << "README.md grew past ~200 lines; move the "
                            "content into docs/ instead";

  // The subsystem book documents every checkopt knob by name.
  std::string Book = readFile("docs/checkopt.md");
  const PassRegistry::Entry *E = PassRegistry::global().lookup("checkopt");
  ASSERT_NE(E, nullptr);
  for (const auto &Knob : E->Knobs)
    if (Knob != "none" && Knob != "off")
      EXPECT_NE(Book.find("`" + Knob + "`"), std::string::npos)
          << "docs/checkopt.md no longer mentions knob '" << Knob << "'";
}

TEST(DocsDrift, RuntimeDocCurrent) {
  std::string Readme = readFile("README.md");
  EXPECT_NE(Readme.find("docs/runtime.md"), std::string::npos)
      << "README must point at the runtime doc";

  // The runtime book names the live surface: the session API, the batch
  // facility entry points, and the bench flags.
  std::string Doc = readFile("docs/runtime.md");
  for (const char *Needle :
       {"runSession", "RunRequest", "SessionResult", "FacilityOptions",
        "lookupN", "updateN", "clearRange", "copyRange", "--lanes",
        "--shards", "--lockfree", "MetaStatsOut", "test_concurrency.cpp",
        "LockFreeRead", "LockFreeReads", "StripeSeqlock", "SeqlockRetryCost",
        "SeqlockReads", "SeqlockRetries",
        // Traffic tier: builtins, sample plumbing, per-request keys.
        "sb_guard", "sb_request_end", "RequestSample", "TrafficSchedule",
        "TrafficReport", "checks_per_request", "sim_cost_per_request",
        "test_traffic.cpp", "--requests"})
    EXPECT_NE(Doc.find(Needle), std::string::npos)
        << "docs/runtime.md no longer mentions '" << Needle << "'";

  // Constants quoted in the doc track the code: the stripe size (whose
  // equality with one shadow page ShadowSpaceMetadata static_asserts)
  // and the lock prices in the drift-marked cost table.
  EXPECT_NE(Doc.find("2^" + std::to_string(ShardStripeLog2) + "-byte"),
            std::string::npos)
      << "docs/runtime.md stripe size drifted from ShardStripeLog2";
  std::vector<std::string> Costs = driftRegion(Doc, "lock-costs");
  ASSERT_FALSE(Costs.empty())
      << "docs/runtime.md lost its drift:lock-costs table";
  auto RowHas = [&Costs](const std::string &Row, uint64_t Price) {
    for (const auto &Line : Costs)
      if (Line.find("| " + Row + " |") != std::string::npos &&
          Line.find("| " + std::to_string(Price) + " |") != std::string::npos)
        return true;
    return false;
  };
  EXPECT_TRUE(RowHas("uncontended", UncontendedLockCost))
      << "docs/runtime.md uncontended price drifted from "
         "UncontendedLockCost";
  EXPECT_TRUE(RowHas("contended", ContendedLockCost))
      << "docs/runtime.md contended price drifted from ContendedLockCost";
  EXPECT_TRUE(RowHas("seqlock retry", SeqlockRetryCost))
      << "docs/runtime.md seqlock retry price drifted from SeqlockRetryCost";
}

TEST(DocsDrift, ObservabilityDocCurrent) {
  std::string Readme = readFile("README.md");
  EXPECT_NE(Readme.find("docs/observability.md"), std::string::npos)
      << "README must point at the observability doc";

  // The telemetry book names the live surface: bench flags, the site-tag
  // instruction, the probe histogram path.
  std::string Doc = readFile("docs/observability.md");
  for (const char *Needle :
       {"--profile", "--trace", "spatial.check", "probe_length",
        "assignCheckSites", "writeChromeTrace"})
    EXPECT_NE(Doc.find(Needle), std::string::npos)
        << "docs/observability.md no longer mentions '" << Needle << "'";

  // Constants quoted in the doc track the code: the histogram bucket
  // count and the trace lane IDs.
  EXPECT_NE(
      Doc.find(std::to_string(TelemetryHistogram::NumBuckets) + " buckets"),
      std::string::npos)
      << "docs/observability.md bucket count drifted from "
         "TelemetryHistogram::NumBuckets";
  EXPECT_NE(Doc.find("| " + std::to_string(Telemetry::TidPipeline) +
                     " | `pipeline` |"),
            std::string::npos)
      << "docs/observability.md pipeline lane drifted from "
         "Telemetry::TidPipeline";
  EXPECT_NE(Doc.find("| " + std::to_string(Telemetry::TidVM) + " | `vm` |"),
            std::string::npos)
      << "docs/observability.md vm lane drifted from Telemetry::TidVM";
}

} // namespace
