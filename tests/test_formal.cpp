//===- tests/test_formal.cpp - §4 semantics property tests ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based checking of §4's theorems over the executable model:
/// Preservation (well-formedness survives every step) and Progress
/// (evaluation from a well-formed state ends in a value, Abort, or
/// OutOfMem — never stuck), plus directed unit cases for the §4.2
/// dereference rules.
///
//===----------------------------------------------------------------------===//

#include "formal/Semantics.h"

#include <gtest/gtest.h>

using namespace softbound;
using namespace softbound::formal;

namespace {

TEST(FormalSemantics, InitialEnvIsWellFormed) {
  RNG R(1);
  Env E = makeInitialEnv(R);
  EXPECT_TRUE(wfStack(E));
  EXPECT_TRUE(wfMem(E));
}

TEST(FormalSemantics, InBoundsDerefSucceeds) {
  RNG R(2);
  Env E = makeInitialEnv(R);
  // p0 = malloc(4); *p0 = 7; i0 = *p0.
  auto Prog = seq(seq(assign(var("p0"), mallocOf(constant(4))),
                      assign(deref(var("p0")), constant(7))),
                  assign(var("i0"), lhsExpr(deref(var("p0")))));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::Ok);
  MValue V;
  ASSERT_TRUE(readMem(E, E.Stack["i0"].first, V));
  EXPECT_EQ(V.V, 7);
}

TEST(FormalSemantics, OutOfBoundsDerefAborts) {
  RNG R(3);
  Env E = makeInitialEnv(R);
  // p0 = malloc(2); p0 = p0 + 2; *p0 = 1  -> Abort (one past the end).
  auto Prog = seq(seq(assign(var("p0"), mallocOf(constant(2))),
                      assign(var("p0"),
                             add(lhsExpr(var("p0")), constant(2)))),
                  assign(deref(var("p0")), constant(1)));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::Abort);
}

TEST(FormalSemantics, NullBoundsPointerAborts) {
  RNG R(4);
  Env E = makeInitialEnv(R);
  // Uninitialized pointer (null metadata): dereference aborts rather than
  // getting stuck — the instrumented semantics is total.
  auto Prog = assign(deref(var("p0")), constant(3));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::Abort);
}

TEST(FormalSemantics, CastPreservesMetadata) {
  RNG R(5);
  Env E = makeInitialEnv(R);
  // p0 = malloc(3); p1 = (int*)p0; *p1 = 9 succeeds: the cast kept bounds.
  auto Prog = seq(seq(assign(var("p0"), mallocOf(constant(3))),
                      assign(var("p1"),
                             castTo(ptrTy(intTy()), lhsExpr(var("p0"))))),
                  assign(deref(var("p1")), constant(9)));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::Ok);
}

TEST(FormalSemantics, AddressOfGivesObjectBounds) {
  RNG R(6);
  Env E = makeInitialEnv(R);
  auto Prog = seq(assign(var("p0"), addrOf(var("i0"))),
                  assign(deref(var("p0")), constant(5)));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::Ok);
  MValue V;
  ASSERT_TRUE(readMem(E, E.Stack["i0"].first, V));
  EXPECT_EQ(V.V, 5);
}

TEST(FormalSemantics, MallocExhaustionIsOutOfMem) {
  RNG R(7);
  Env E = makeInitialEnv(R);
  E.MaxAddr = E.NextAlloc + 4; // Tiny arena.
  auto Prog = assign(var("p0"), mallocOf(constant(100)));
  ASSERT_TRUE(wfCmd(E, *Prog));
  EXPECT_EQ(evalCmd(E, *Prog), Outcome::OutOfMem);
}

TEST(FormalSemantics, IllTypedProgramsAreRejected) {
  RNG R(8);
  Env E = makeInitialEnv(R);
  // i0 = p0 (pointer into int without a cast): not well formed.
  EXPECT_FALSE(wfCmd(E, *assign(var("i0"), lhsExpr(var("p0")))));
  // *i0 = 1 (deref of an int): not well formed.
  EXPECT_FALSE(wfCmd(E, *assign(deref(var("i0")), constant(1))));
}

//===----------------------------------------------------------------------===//
// The theorems, checked over random well-formed programs.
//===----------------------------------------------------------------------===//

class FormalTheorems : public ::testing::TestWithParam<int> {};

TEST_P(FormalTheorems, PreservationAndProgress) {
  RNG R(1000 + GetParam());
  Env E = makeInitialEnv(R);
  auto Prog = generateProgram(R, E, 30);
  if (!wfCmd(E, *Prog))
    GTEST_SKIP() << "generator produced an ill-typed program";
  TheoremCheck C = checkTheorems(E, *Prog);
  EXPECT_TRUE(C.PreservationHolds)
      << "well-formedness lost during evaluation (seed " << GetParam()
      << ")";
  EXPECT_TRUE(C.ProgressHolds)
      << "evaluation got stuck from a well-formed state (seed "
      << GetParam() << ")";
  EXPECT_NE(C.Result, Outcome::Stuck);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FormalTheorems,
                         ::testing::Range(0, 200));

TEST(FormalTheorems, AbortsObservedAcrossSweep) {
  // Sanity: the property sweep is not vacuous — some generated programs
  // really do abort (out-of-bounds pointer arithmetic then dereference),
  // and many complete normally.
  int Aborts = 0, Oks = 0;
  for (int Seed = 0; Seed < 300; ++Seed) {
    RNG R(5000 + Seed);
    Env E = makeInitialEnv(R);
    auto Prog = generateProgram(R, E, 30);
    if (!wfCmd(E, *Prog))
      continue;
    TheoremCheck C = checkTheorems(E, *Prog);
    if (C.Result == Outcome::Abort)
      ++Aborts;
    if (C.Result == Outcome::Ok)
      ++Oks;
  }
  EXPECT_GT(Aborts, 10);
  EXPECT_GT(Oks, 10);
}

} // namespace
