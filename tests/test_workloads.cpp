//===- tests/test_workloads.cpp - benchmark suite integration --------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every Figure-1/2 benchmark must (a) run clean uninstrumented, (b) run
/// clean and byte-identical under SoftBound in every mode x facility
/// combination (no false positives, §6.4), and (c) show the pointer-density
/// ordering Figure 1 depends on.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

class WorkloadTransparency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WorkloadTransparency, InstrumentedMatchesPlain) {
  const Workload &W = benchmarkSuite()[std::get<0>(GetParam())];
  int Cfg = std::get<1>(GetParam());
  const std::pair<CheckMode, FacilityKind> Cases[] = {
      {CheckMode::Full, FacilityKind::Shadow},
      {CheckMode::Full, FacilityKind::Hash},
      {CheckMode::StoreOnly, FacilityKind::Shadow},
      {CheckMode::StoreOnly, FacilityKind::Hash},
  };

  RunResult Plain =
      runSession(planFromBuildOptions(W.Source, BuildOptions{})).Combined;
  ASSERT_TRUE(Plain.ok()) << W.Name << ": " << Plain.Message;

  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = Cases[Cfg].first;
  RunOptions R;
  R.Facility = Cases[Cfg].second;
  RunResult SB = runSession(planFromBuildOptions(W.Source, B), R).Combined;
  EXPECT_TRUE(SB.ok()) << W.Name << ": " << trapName(SB.Trap) << " "
                       << SB.Message;
  EXPECT_EQ(SB.ExitCode, Plain.ExitCode) << W.Name;
  EXPECT_EQ(SB.Output, Plain.Output) << W.Name;
}

std::string
transparencyCaseName(const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
  static const char *CfgNames[4] = {"FullShadow", "FullHash", "StoreShadow",
                                    "StoreHash"};
  return benchmarkSuite()[std::get<0>(Info.param)].Name + "_" +
         CfgNames[std::get<1>(Info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadTransparency,
    ::testing::Combine(::testing::Range(0, 15), ::testing::Range(0, 4)),
    transparencyCaseName);

TEST(WorkloadSuite, PointerDensityRampMatchesFigure1) {
  // Figure 1's x-axis: the suite is sorted by the fraction of memory
  // operations that load/store pointers. Verify the two ends and the
  // rough monotone shape (SPEC array codes low, Olden pointer codes high).
  std::vector<double> Density;
  for (const auto &W : benchmarkSuite()) {
    RunResult R =
        runSession(planFromBuildOptions(W.Source, BuildOptions{})).Combined;
    ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Message;
    Density.push_back(R.Counters.ptrOpFraction());
  }
  // The five SPEC-style array kernels stay under 10%.
  for (int I = 0; I < 5; ++I)
    EXPECT_LT(Density[I], 0.10) << benchmarkSuite()[I].Name;
  // The paper: "over half of the memory operations in several of the
  // Olden benchmarks are loads and stores of pointers".
  EXPECT_GT(Density[13], 0.40) << "em3d";
  EXPECT_GT(Density[14], 0.40) << "treeadd";
  // The last five are clearly more pointer-dense than the first five.
  for (int I = 10; I < 15; ++I)
    EXPECT_GT(Density[I], Density[4] + 0.10)
        << benchmarkSuite()[I].Name << " vs ijpeg";
}

TEST(WorkloadSuite, AllBenchmarksAreNontrivial) {
  for (const auto &W : benchmarkSuite()) {
    RunResult R =
        runSession(planFromBuildOptions(W.Source, BuildOptions{})).Combined;
    ASSERT_TRUE(R.ok()) << W.Name;
    EXPECT_GT(R.Counters.Insts, 50'000u) << W.Name << " is too small";
    EXPECT_GT(R.Counters.memOps(), 5'000u) << W.Name;
  }
}

TEST(WorkloadSuite, OptimizerPreservesBehaviour) {
  for (const auto &W : benchmarkSuite()) {
    BuildOptions NoOpt;
    NoOpt.Optimize = false;
    RunResult Raw = runSession(planFromBuildOptions(W.Source, NoOpt)).Combined;
    RunResult Opt =
        runSession(planFromBuildOptions(W.Source, BuildOptions{})).Combined;
    ASSERT_TRUE(Raw.ok() && Opt.ok()) << W.Name;
    EXPECT_EQ(Raw.ExitCode, Opt.ExitCode) << W.Name;
    // Register promotion must reduce dynamic memory operations.
    EXPECT_LT(Opt.Counters.memOps(), Raw.Counters.memOps()) << W.Name;
  }
}

} // namespace
