//===- bench/bench_table3_attacks.cpp - Table 3 -----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: the synthetic attack suite (Wilander-style), with
/// SoftBound detection under full and store-only checking. Paper's result:
/// 18/18 detected in both modes.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

int main() {
  std::printf("=== Table 3: synthetic attack suite detection ===\n\n");
  TablePrinter T({"attack", "technique", "location", "target", "unprotected",
                  "full", "store-only"});

  int Landed = 0, FullDet = 0, StoreDet = 0;
  for (const auto &A : attackSuite()) {
    BuildResult Plain = mustBuild(A.Source, BuildOptions{});
    RunResult RPlain = runSession(Plain).Combined;

    BuildOptions BF;
    BF.Instrument = true;
    BF.SB.Mode = CheckMode::Full;
    RunResult RFull = runSession(mustBuild(A.Source, BF)).Combined;

    BuildOptions BS;
    BS.Instrument = true;
    BS.SB.Mode = CheckMode::StoreOnly;
    RunResult RStore = runSession(mustBuild(A.Source, BS)).Combined;

    bool L = RPlain.attackLanded();
    bool F = RFull.violationDetected();
    bool S = RStore.violationDetected();
    Landed += L;
    FullDet += F;
    StoreDet += S;
    T.addRow({A.Name, A.Technique, A.Location, A.Target,
              L ? "attack lands" : "NO EFFECT", F ? "yes" : "MISSED",
              S ? "yes" : "MISSED"});
  }
  T.print();
  std::printf("\nattacks landing unprotected: %d/18\n", Landed);
  std::printf("detected with full checking:  %d/18 (paper: 18/18)\n",
              FullDet);
  std::printf("detected with store-only:     %d/18 (paper: 18/18)\n",
              StoreDet);
  return (Landed == 18 && FullDet == 18 && StoreDet == 18) ? 0 : 1;
}
