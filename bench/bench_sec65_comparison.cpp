//===- bench/bench_sec65_comparison.cpp - §6.5 -------------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §6.5 comparison against related pointer-based schemes:
///   * MSCC-like: no sub-object shrinking, costlier linked metadata
///     (modelled as the hash facility + no shrink) — the paper reports
///     MSCC above SoftBound (e.g. go: 144% vs 55%).
///   * CCured-like: whole-program SAFE-pointer inference removes checks
///     statically (modelled with the static in-bounds elision) — lower
///     than SoftBound on average, at the price of source-compatibility.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

int main() {
  std::printf("=== §6.5: comparison to pointer-based schemes ===\n");
  std::printf("(percent simulated-cycle overhead vs uninstrumented)\n\n");

  TablePrinter T({"benchmark", "softbound-full %", "mscc-like %",
                  "ccured-like %", "checks elided (ccured)"});
  double SumSB = 0, SumMSCC = 0, SumCC = 0;
  double GoSB = 0, GoMSCC = 0;
  int N = 0;

  for (const auto &W : benchmarkSuite()) {
    BuildResult Base = mustBuild(W.Source, BuildOptions{});
    Measurement MB = measure(Base);
    uint64_t BaseCycles = MB.R.Counters.Cycles;

    // SoftBound proper: shadow facility, full checking.
    BuildOptions BSB;
    BSB.Instrument = true;
    Measurement MSB = measure(mustBuild(W.Source, BSB));

    // MSCC-like: no shrinking, hash facility (linked metadata cost).
    BuildOptions BM;
    BM.Instrument = true;
    BM.SB.ShrinkBounds = false;
    RunOptions RM;
    RM.Facility = FacilityKind::Hash;
    // MSCC's per-dereference check consults its linked metadata structures
    // (~8 instructions vs SoftBound's 3-instruction compare pair).
    RM.CheckCost = 8;
    Measurement MM = measure(mustBuild(W.Source, BM), RM);

    // CCured-like: static SAFE-pointer check elision, shadow facility.
    BuildOptions BC;
    BC.Instrument = true;
    BC.SB.ElideSafePointerChecks = true;
    BuildResult CCProg = mustBuild(W.Source, BC);
    Measurement MC = measure(CCProg);

    double SB = overheadPct(MSB.R.Counters.Cycles, BaseCycles);
    double MSCC = overheadPct(MM.R.Counters.Cycles, BaseCycles);
    double CC = overheadPct(MC.R.Counters.Cycles, BaseCycles);
    SumSB += SB;
    SumMSCC += MSCC;
    SumCC += CC;
    ++N;
    if (W.Name == "go") {
      GoSB = SB;
      GoMSCC = MSCC;
    }
    T.addRow({W.Name, TablePrinter::fmt(SB, 1), TablePrinter::fmt(MSCC, 1),
              TablePrinter::fmt(CC, 1),
              std::to_string(CCProg.Stats.ChecksElidedStatically)});
  }
  T.addRow({"average", TablePrinter::fmt(SumSB / N, 1),
            TablePrinter::fmt(SumMSCC / N, 1),
            TablePrinter::fmt(SumCC / N, 1), ""});
  T.print();

  std::printf("\npaper shape checks:\n");
  std::printf("  MSCC-like > SoftBound on average:  %s (paper: MSCC avg 68%%"
              " spatial-only vs SoftBound 79%% full incl. sub-object; on\n"
              "   shared benchmarks like go MSCC is ~2.6x SoftBound)\n",
              SumMSCC > SumSB ? "yes" : "NO");
  std::printf("  go: mscc/softbound ratio = %.2f (paper: 144%%/55%% = 2.6)\n",
              GoSB > 0 ? GoMSCC / GoSB : 0.0);
  std::printf("  CCured-like <= SoftBound on average: %s (paper: CCured "
              "3-87%% vs SoftBound 79%%)\n",
              SumCC <= SumSB ? "yes" : "NO");
  return 0;
}
