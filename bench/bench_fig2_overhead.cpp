//===- bench/bench_fig2_overhead.cpp - Figure 2 -----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 2: runtime overhead of SoftBound with full and
/// store-only checking under the hash-table and shadow-space metadata
/// facilities, per benchmark plus averages. Overhead is measured in
/// deterministic simulated cycles (1/instruction; 9 per hash metadata op,
/// 5 per shadow op, 3 per check — the paper's §5.1 instruction counts).
///
/// Paper's shape to reproduce: hash-full > shadow-full > store-only;
/// low-pointer-density SPEC kernels show check-dominated overhead that is
/// nearly facility-independent; pointer-dense Olden kernels separate the
/// two facilities; store-only stays under 15% for at least half of the
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <set>

using namespace softbound;
using namespace softbound::benchutil;

namespace {

struct Config {
  const char *Name;
  CheckMode Mode;
  FacilityKind Facility;
};

const Config Configs[] = {
    {"hash-full", CheckMode::Full, FacilityKind::Hash},
    {"shadow-full", CheckMode::Full, FacilityKind::Shadow},
    {"hash-store", CheckMode::StoreOnly, FacilityKind::Hash},
    {"shadow-store", CheckMode::StoreOnly, FacilityKind::Shadow},
};

} // namespace

int main() {
  std::printf("=== Figure 2: runtime overhead of SoftBound ===\n");
  std::printf("(percent overhead in simulated cycles vs uninstrumented;\n"
              " two metadata facilities x two checking modes)\n\n");

  TablePrinter T({"benchmark", "base Mcycles", "hash-full %", "shadow-full %",
                  "hash-store %", "shadow-store %", "wall x(shadow-full)"});

  double Sum[4] = {0, 0, 0, 0};
  int UnderFifteenStore = 0;
  int N = 0;

  for (const auto &W : benchmarkSuite()) {
    BuildResult Base = mustBuild(W.Source, BuildOptions{});
    Measurement MBase = measure(Base);
    if (!MBase.R.ok()) {
      std::fprintf(stderr, "%s baseline failed: %s\n", W.Name.c_str(),
                   MBase.R.Message.c_str());
      return 1;
    }
    uint64_t BaseCycles = MBase.R.Counters.Cycles;

    double Pct[4];
    double WallRatio = 0;
    for (int C = 0; C < 4; ++C) {
      BuildOptions B;
      B.Instrument = true;
      B.SB.Mode = Configs[C].Mode;
      BuildResult Prog = mustBuild(W.Source, B);
      RunOptions R;
      R.Facility = Configs[C].Facility;
      Measurement M = measure(Prog, R);
      if (!M.R.ok() || M.R.ExitCode != MBase.R.ExitCode) {
        std::fprintf(stderr, "%s/%s diverged: trap=%s exit=%lld vs %lld\n",
                     W.Name.c_str(), Configs[C].Name, trapName(M.R.Trap),
                     static_cast<long long>(M.R.ExitCode),
                     static_cast<long long>(MBase.R.ExitCode));
        return 1;
      }
      Pct[C] = overheadPct(M.R.Counters.Cycles, BaseCycles);
      Sum[C] += Pct[C];
      if (C == 1 && MBase.WallSeconds > 0)
        WallRatio = M.WallSeconds / MBase.WallSeconds;
    }
    if (Pct[3] < 15.0)
      ++UnderFifteenStore;
    ++N;

    T.addRow({W.Name, TablePrinter::fmt(BaseCycles / 1e6, 2),
              TablePrinter::fmt(Pct[0], 1), TablePrinter::fmt(Pct[1], 1),
              TablePrinter::fmt(Pct[2], 1), TablePrinter::fmt(Pct[3], 1),
              TablePrinter::fmt(WallRatio, 2)});
  }

  T.addRow({"average", "", TablePrinter::fmt(Sum[0] / N, 1),
            TablePrinter::fmt(Sum[1] / N, 1), TablePrinter::fmt(Sum[2] / N, 1),
            TablePrinter::fmt(Sum[3] / N, 1), ""});
  T.print();

  // ------------------------------------------------------------------
  // Static check optimization (opt/checks/): dynamic checks executed with
  // the subsystem off vs on, and the static elimination rate. The checks
  // counter is facility-independent (both facilities execute the same
  // instrumented module), so one table covers hash and shadow runs.
  // ------------------------------------------------------------------
  std::printf("\n=== Check optimization: dynamic checks executed ===\n\n");
  TablePrinter C({"benchmark", "full unopt", "full opt", "red %",
                  "store unopt", "store opt", "red %", "static elim %"});
  // Workloads dominated by counted loops, where hull hoisting applies; the
  // pointer-chasing Olden kernels keep their inherently dynamic checks.
  const std::set<std::string> CountedLoopSet = {"lbm", "hmmer", "compress",
                                                "ijpeg"};
  double CountedRedSum = 0;
  int CountedN = 0;
  bool CountedAllOver30 = true;
  for (const auto &W : benchmarkSuite()) {
    uint64_t Checks[4]; // full-unopt, full-opt, store-unopt, store-opt
    double ElimRate = 0;
    for (int K = 0; K < 4; ++K) {
      BuildOptions B;
      B.Instrument = true;
      B.SB.Mode = K < 2 ? CheckMode::Full : CheckMode::StoreOnly;
      B.CheckOpt.Enable = K % 2 == 1;
      BuildResult Prog = mustBuild(W.Source, B);
      Measurement M = measure(Prog);
      if (!M.R.ok()) {
        std::fprintf(stderr, "%s checkopt run failed: %s\n", W.Name.c_str(),
                     M.R.Message.c_str());
        return 1;
      }
      Checks[K] = M.R.Counters.Checks;
      if (K == 1)
        ElimRate = 100.0 * Prog.Stats.CheckOpt.eliminationRate();
    }
    double RedFull =
        Checks[0] ? 100.0 * (1.0 - double(Checks[1]) / Checks[0]) : 0;
    double RedStore =
        Checks[2] ? 100.0 * (1.0 - double(Checks[3]) / Checks[2]) : 0;
    if (CountedLoopSet.count(W.Name)) {
      CountedRedSum += RedFull;
      ++CountedN;
      if (RedFull < 30.0)
        CountedAllOver30 = false;
    }
    C.addRow({W.Name, std::to_string(Checks[0]), std::to_string(Checks[1]),
              TablePrinter::fmt(RedFull, 1), std::to_string(Checks[2]),
              std::to_string(Checks[3]), TablePrinter::fmt(RedStore, 1),
              TablePrinter::fmt(ElimRate, 1)});
  }
  C.print();
  std::printf("\ncheck-optimization shape checks:\n");
  std::printf("  counted-loop workloads >=30%% fewer checks:  %s "
              "(avg %.1f%% over %d benchmarks)\n",
              CountedAllOver30 ? "yes" : "NO", CountedRedSum / CountedN,
              CountedN);

  std::printf("\npaper shape checks:\n");
  std::printf("  hash-full avg > shadow-full avg:          %s (%.1f%% vs "
              "%.1f%%; paper: 127%% vs 79%%)\n",
              Sum[0] > Sum[1] ? "yes" : "NO", Sum[0] / N, Sum[1] / N);
  std::printf("  shadow-full avg > shadow-store avg:       %s (%.1f%% vs "
              "%.1f%%; paper: 79%% vs 32%%)\n",
              Sum[1] > Sum[3] ? "yes" : "NO", Sum[1] / N, Sum[3] / N);
  std::printf("  store-only <15%% for >= half of suite:     %s (%d of %d; "
              "paper: more than half)\n",
              UnderFifteenStore * 2 >= N ? "yes" : "NO", UnderFifteenStore,
              N);
  return 0;
}
