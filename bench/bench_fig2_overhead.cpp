//===- bench/bench_fig2_overhead.cpp - Figure 2 -----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 2: runtime overhead of SoftBound with full and
/// store-only checking under the hash-table and shadow-space metadata
/// facilities, per benchmark plus averages. Overhead is measured in
/// deterministic simulated cycles (1/instruction; 9 per hash metadata op,
/// 5 per shadow op, 3 per check — the paper's §5.1 instruction counts).
///
/// Paper's shape to reproduce: hash-full > shadow-full > store-only;
/// low-pointer-density SPEC kernels show check-dominated overhead that is
/// nearly facility-independent; pointer-dense Olden kernels separate the
/// two facilities; store-only stays under 15% for at least half of the
/// benchmarks.
///
/// Flags (the CI bench-regression gate):
///   --json <path>            write per-workload check counts, simulated
///                            checking costs, check-opt elision stats,
///                            and per-pass timings (a non-gated
///                            `timings_*` key group) as JSON.
///   --baseline <path>        compare this run's dynamic-check counts and
///                            simulated costs against a committed
///                            baseline; exit 1 when any workload
///                            regresses (counts are deterministic;
///                            timings are never gated).
///   --write-baseline <path>  write a fresh baseline file (the refresh
///                            procedure documented in README.md).
///   --summary <path>         write a per-workload current-vs-baseline
///                            delta table as GitHub-flavoured markdown
///                            (appended to the CI job summary).
///   --profile                per-site hot-site tables for the full-opt
///                            shadow run (docs/observability.md), added
///                            to --json and --summary output. The table
///                            is deterministic: site IDs, names, and
///                            counts are identical across runs.
///   --trace <path>           export a Chrome-trace-event timeline of
///                            pipeline passes (wall-clock) and VM run
///                            phases (simulated cycles); loads in
///                            chrome://tracing or Perfetto.
///   --workload <name>        run only the named workload (repeatable);
///                            the CI telemetry smoke uses this. Skips
///                            suite-wide shape checks' denominators as
///                            needed; do not combine with --baseline.
///   --lanes <N>              run every measurement as an N-lane VM
///                            session (docs/runtime.md). Lane counters
///                            are summed, so N > 1 cannot be combined
///                            with --baseline / --write-baseline; the
///                            JSON gains non-gated `lanes` and
///                            `contention_*` keys (like `timings_*`).
///   --shards <N>             shard the metadata facility over N
///                            address-stripe locks (rounded to a power
///                            of two). Lookup/update results and the
///                            gated counts are shard-independent.
///   --lockfree               run the facility in the LockFreeRead
///                            model (docs/runtime.md "Lock-free
///                            reads"): lookups are seqlock-validated
///                            copies with zero mutex acquisitions; the
///                            JSON gains non-gated `lockfree` and
///                            `contention_seqlock_*` keys. Results and
///                            gated counts are model-independent.
///
/// The simulated cost is the §5.1 checking-cost component of a run,
/// separated from the program's own instructions:
///
///   sim_cost = checks * check cost (3)
///            + metadata loads * MetadataFacility::lookupCost()
///            + metadata stores * updateCost()
///            + hull-guard evaluations * 1
///
/// Dynamic-check counts alone undercount the runtime-limit hull design:
/// a guarded fallback check that is skipped still pays its one-cycle
/// guard test every iteration, and sim-cost keeps the gate honest about
/// that trade.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/BenchUtil.h"
#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace softbound;
using namespace softbound::benchutil;
using namespace softbound::benchjson;

namespace {

struct Config {
  const char *Name;
  CheckMode Mode;
  FacilityKind Facility;
};

const Config Configs[] = {
    {"hash-full", CheckMode::Full, FacilityKind::Hash},
    {"shadow-full", CheckMode::Full, FacilityKind::Shadow},
    {"hash-store", CheckMode::StoreOnly, FacilityKind::Hash},
    {"shadow-store", CheckMode::StoreOnly, FacilityKind::Shadow},
};

/// The checking-cost component of one measured run (see the file header).
uint64_t simCost(const VMCounters &C, const MetadataFacility &Meta) {
  return C.Checks * 3 + C.MetaLoads * Meta.lookupCost() +
         C.MetaStores * Meta.updateCost() + C.CheckGuards * 1;
}

/// One row of the --profile hot-site table (full-opt shadow run).
struct SiteRow {
  std::string Site;   // "<function>#<ordinal>" (Module::checkSites).
  const char *Kind;   // "check", "funcptr", "meta.load", "meta.store".
  bool Guarded = false;
  uint64_t Executed = 0;
  uint64_t GuardElided = 0;
  uint64_t FallbackFired = 0;
  uint64_t Traps = 0;
  uint64_t SimCost = 0; // Site share of the §5.1 checking cost.
};

/// Everything measured for one workload, for the table and the JSON dump.
struct WorkloadNumbers {
  std::string Name;
  uint64_t BaseCycles = 0;
  double OverheadPct[4] = {0, 0, 0, 0};
  double WallRatio = 0;
  uint64_t Checks[4] = {0, 0, 0, 0}; // full-unopt/full-opt/store-unopt/store-opt
  uint64_t MetaOps[4] = {0, 0, 0, 0}; // Same runs, meta.load + meta.store.
  uint64_t SimCost[4] = {0, 0, 0, 0}; // Same runs, shadow-facility costs.
  uint64_t CheckGuards = 0;           // Full-opt guard evaluations.
  uint64_t GuardSkips = 0;            // Full-opt guarded-check skips.
  CheckOptStats CheckOpt;            // Default-pipeline (full, opt) stats.
  MetadataStats MetaStats;           // Default-pipeline facility stats
                                     // (lock counters feed contention_*).
  std::vector<PassTiming> Timings;   // Default-pipeline per-pass timings.
  std::vector<SiteRow> HotSites;     // --profile: sim-cost-sorted, capped.
  size_t SitesTotal = 0;             // --profile: module site-table size.
  size_t SitesLive = 0;              // --profile: sites with any activity.
};

/// Rows reported per workload in JSON / markdown under --profile.
constexpr size_t MaxJsonSites = 50;
constexpr size_t MaxSummarySites = 10;

/// Builds the deterministic hot-site table from one profiled run: every
/// site with any activity, sorted by its share of the simulated checking
/// cost (§5.1 shadow costs), site ID breaking ties.
void fillHotSites(WorkloadNumbers &Num, const Module &M,
                  const SiteProfile &Prof) {
  ShadowSpaceMetadata ShadowCosts;
  const auto &Sites = M.checkSites();
  Num.SitesTotal = Sites.size();
  std::vector<std::pair<size_t, SiteRow>> Rows;
  for (size_t I = 0; I < Sites.size() && I < Prof.Sites.size(); ++I) {
    const SiteCounters &SC = Prof.Sites[I];
    if (!SC.Executed && !SC.GuardElided && !SC.FallbackFired && !SC.Traps)
      continue;
    SiteRow Row;
    Row.Site = Sites[I].Name;
    Row.Guarded = Sites[I].Guarded;
    Row.Executed = SC.Executed;
    Row.GuardElided = SC.GuardElided;
    Row.FallbackFired = SC.FallbackFired;
    Row.Traps = SC.Traps;
    switch (Sites[I].Kind) {
    case ValueKind::SpatialCheck:
      Row.Kind = "check";
      Row.SimCost =
          SC.Executed * 3 + (SC.GuardElided + SC.FallbackFired) * 1;
      break;
    case ValueKind::FuncPtrCheck:
      Row.Kind = "funcptr";
      Row.SimCost = SC.Executed * 3;
      break;
    case ValueKind::MetaLoad:
      Row.Kind = "meta.load";
      Row.SimCost = SC.Executed * ShadowCosts.lookupCost();
      break;
    case ValueKind::MetaStore:
      Row.Kind = "meta.store";
      Row.SimCost = SC.Executed * ShadowCosts.updateCost();
      break;
    default:
      Row.Kind = "?";
      break;
    }
    Rows.emplace_back(I, std::move(Row));
  }
  Num.SitesLive = Rows.size();
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.SimCost != B.second.SimCost)
      return A.second.SimCost > B.second.SimCost;
    return A.first < B.first;
  });
  if (Rows.size() > MaxJsonSites)
    Rows.resize(MaxJsonSites);
  for (auto &R : Rows)
    Num.HotSites.push_back(std::move(R.second));
}

const char *DefaultSpec = "optimize,softbound,checkopt";

void writeJson(const std::vector<WorkloadNumbers> &All, bool Profile,
               unsigned Lanes, unsigned Shards, bool LockFree,
               const std::string &Path) {
  JsonWriter W;
  W.beginObject();
  W.kv("schema", "softbound-bench-fig2-v1");
  W.kv("pipeline", DefaultSpec);
  // Session shape of this run. Non-gated, like timings_*: the gate only
  // ever reads single-lane counts.
  W.kv("lanes", static_cast<uint64_t>(Lanes));
  W.kv("shards", static_cast<uint64_t>(Shards));
  W.kv("lockfree", LockFree);
  W.key("workloads");
  W.beginObject();
  for (const auto &N : All) {
    W.key(N.Name);
    W.beginObject();
    W.kv("base_cycles", N.BaseCycles);
    // Facility lock traffic of the default-pipeline run (non-gated:
    // contention is scheduling-dependent for Lanes > 1). The sim-cost
    // prices are docs/runtime.md's: uncontended 1, contended 40.
    W.kv("contention_lock_acquires", N.MetaStats.LockAcquires);
    W.kv("contention_lock_contended", N.MetaStats.LockContended);
    W.kv("contention_seqlock_reads", N.MetaStats.SeqlockReads);
    W.kv("contention_seqlock_retries", N.MetaStats.SeqlockRetries);
    W.kv("contention_sim_cost", N.MetaStats.contentionSimCost());
    for (int C = 0; C < 4; ++C)
      W.kv(std::string("overhead_pct_") + Configs[C].Name, N.OverheadPct[C]);
    W.kv("checks_full_unopt", N.Checks[0]);
    W.kv("checks_full", N.Checks[1]);
    W.kv("checks_store_unopt", N.Checks[2]);
    W.kv("checks_store", N.Checks[3]);
    W.kv("meta_ops_full_unopt", N.MetaOps[0]);
    W.kv("meta_ops_full", N.MetaOps[1]);
    W.kv("meta_ops_store_unopt", N.MetaOps[2]);
    W.kv("meta_ops_store", N.MetaOps[3]);
    W.kv("sim_cost_full_unopt", N.SimCost[0]);
    W.kv("sim_cost_full", N.SimCost[1]);
    W.kv("sim_cost_store_unopt", N.SimCost[2]);
    W.kv("sim_cost_store", N.SimCost[3]);
    W.kv("check_guards_full", N.CheckGuards);
    W.kv("guard_skips_full", N.GuardSkips);
    W.key("checkopt");
    W.beginObject();
    W.kv("static_before", N.CheckOpt.ChecksBefore);
    W.kv("static_after", N.CheckOpt.ChecksAfter);
    W.kv("dominated", N.CheckOpt.DominatedEliminated);
    W.kv("range", N.CheckOpt.RangeEliminated);
    W.kv("hoisted", N.CheckOpt.LoopChecksHoisted);
    W.kv("interproc", N.CheckOpt.InterProcChecksElided);
    W.kv("interproc_callee", N.CheckOpt.InterProcCalleeElided);
    W.kv("interproc_caller", N.CheckOpt.InterProcCallerElided);
    W.kv("interproc_range", N.CheckOpt.InterProcRangeElided);
    W.kv("interproc_sunk", N.CheckOpt.InterProcSunkElided);
    W.kv("interproc_arg_summaries", N.CheckOpt.InterProcArgSummaries);
    W.kv("interproc_ret_summaries", N.CheckOpt.InterProcRetSummaries);
    W.kv("loops_counted_runtime", N.CheckOpt.LoopsCountedRuntime);
    W.kv("loops_symbolic_init", N.CheckOpt.LoopsCountedSymInit);
    W.kv("loops_strided", N.CheckOpt.LoopsCountedStrided);
    W.kv("runtime_hulls", N.CheckOpt.RuntimeHullChecks);
    W.kv("runtime_fallbacks", N.CheckOpt.RuntimeGuardedFallbacks);
    W.kv("runtime_discharged", N.CheckOpt.RuntimeGuardsDischarged);
    W.kv("runtime_divis_guards", N.CheckOpt.RuntimeDivisGuards);
    W.endObject();
    // Checked-region partitioning: the per-function checked/unchecked
    // report (default full-opt pipeline). "checked" functions are fully
    // proven and run without metadata instructions.
    W.key("partition");
    W.beginObject();
    W.kv("functions", N.CheckOpt.PartitionFunctions);
    W.kv("fully_proven", N.CheckOpt.PartitionProven);
    W.kv("meta_loads_removed", N.CheckOpt.PartitionMetaLoadsRemoved);
    W.kv("meta_stores_removed", N.CheckOpt.PartitionMetaStoresRemoved);
    W.key("report");
    W.beginArray();
    for (const auto &V : N.CheckOpt.Partition) {
      W.beginObject();
      W.kv("function", V.Func);
      W.kv("verdict", V.FullyProven ? "checked" : "unchecked");
      W.kv("reason", V.Reason);
      W.kv("meta_loads_removed", V.MetaLoadsRemoved);
      W.kv("meta_stores_removed", V.MetaStoresRemoved);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    // PipelineStats per-pass timings: the non-gated `timings_*` key
    // group (wall-clock, machine-dependent; the gate never reads it).
    double TotalMs = 0;
    for (const auto &T : N.Timings)
      TotalMs += T.Millis;
    W.kv("timings_total_ms", TotalMs);
    W.key("timings_passes");
    W.beginArray();
    for (const auto &T : N.Timings) {
      W.beginObject();
      W.kv("pass", T.Pass);
      W.kv("ms", T.Millis);
      W.endObject();
    }
    W.endArray();
    if (Profile) {
      // Per-site hot-site table (full-opt shadow run). Deterministic:
      // identical across runs, so it can be baseline-diffed like the
      // check counts — but it is not gated.
      W.key("profile");
      W.beginObject();
      W.kv("sites_total", static_cast<uint64_t>(N.SitesTotal));
      W.kv("sites_live", static_cast<uint64_t>(N.SitesLive));
      W.key("hot_sites");
      W.beginArray();
      for (const auto &S : N.HotSites) {
        W.beginObject();
        W.kv("site", S.Site);
        W.kv("kind", S.Kind);
        W.kv("guarded", S.Guarded);
        W.kv("executed", S.Executed);
        W.kv("guard_elided", S.GuardElided);
        W.kv("fallback_fired", S.FallbackFired);
        W.kv("traps", S.Traps);
        W.kv("sim_cost", S.SimCost);
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();
  W.endObject();
  if (!W.writeTo(Path)) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote %s\n", Path.c_str());
}

void writeBaseline(const std::vector<WorkloadNumbers> &All,
                   const std::string &Path) {
  // The baseline file is shared: bench_sec64_servers keeps its traffic
  // section in the same document. Carry any existing section this bench
  // does not own through the refresh instead of clobbering it.
  JsonValue Existing;
  std::string Err;
  bool HaveExisting = parseJsonFile(Path, Existing, Err);
  JsonWriter W;
  W.beginObject();
  W.kv("schema", "softbound-check-counts-v1");
  W.kv("pipeline", DefaultSpec);
  W.key("workloads");
  W.beginObject();
  for (const auto &N : All) {
    W.key(N.Name);
    W.beginObject();
    W.kv("checks_full", N.Checks[1]);
    W.kv("checks_store", N.Checks[3]);
    W.kv("meta_ops_full", N.MetaOps[1]);
    W.kv("meta_ops_store", N.MetaOps[3]);
    W.kv("sim_cost_full", N.SimCost[1]);
    W.kv("sim_cost_store", N.SimCost[3]);
    W.endObject();
  }
  W.endObject();
  if (HaveExisting && Existing.isObject())
    for (const std::string &Key : Existing.ObjOrder) {
      if (Key == "schema" || Key == "pipeline" || Key == "workloads")
        continue;
      W.key(Key);
      writeJsonValue(W, Existing.Obj.at(Key));
    }
  W.endObject();
  if (!W.writeTo(Path)) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote baseline %s\n", Path.c_str());
}

/// Compares this run against the committed baseline. Returns the number
/// of regressions (any workload whose deterministic dynamic-check count
/// exceeds the baseline, or a baseline workload that disappeared).
int compareBaseline(const std::vector<WorkloadNumbers> &All,
                    const std::string &Path) {
  JsonValue Doc;
  std::string Err;
  if (!parseJsonFile(Path, Doc, Err)) {
    std::fprintf(stderr, "baseline: %s\n", Err.c_str());
    return 1;
  }
  const JsonValue *WL = Doc.get("workloads");
  if (!WL || !WL->isObject()) {
    std::fprintf(stderr, "baseline %s: missing \"workloads\" object\n",
                 Path.c_str());
    return 1;
  }
  int Regressions = 0;
  std::printf("\n=== bench-regression gate (baseline: %s) ===\n",
              Path.c_str());
  for (const auto &[Name, Entry] : WL->Obj) {
    const WorkloadNumbers *Cur = nullptr;
    for (const auto &N : All)
      if (N.Name == Name)
        Cur = &N;
    if (!Cur) {
      std::printf("  %-12s MISSING from this run (baseline has it)\n",
                  Name.c_str());
      ++Regressions;
      continue;
    }
    struct {
      const char *Key;
      uint64_t Now;
    } Rows[] = {{"checks_full", Cur->Checks[1]},
                {"checks_store", Cur->Checks[3]},
                {"meta_ops_full", Cur->MetaOps[1]},
                {"meta_ops_store", Cur->MetaOps[3]},
                {"sim_cost_full", Cur->SimCost[1]},
                {"sim_cost_store", Cur->SimCost[3]}};
    for (const auto &Row : Rows) {
      const JsonValue *Base = Entry.get(Row.Key);
      if (!Base || !Base->isNumber())
        continue; // Not gated in this baseline.
      uint64_t Want = static_cast<uint64_t>(Base->asInt());
      if (Row.Now > Want) {
        std::printf("  %-12s %-13s REGRESSED: %llu > baseline %llu\n",
                    Name.c_str(), Row.Key,
                    static_cast<unsigned long long>(Row.Now),
                    static_cast<unsigned long long>(Want));
        ++Regressions;
      } else if (Row.Now < Want) {
        std::printf("  %-12s %-13s improved: %llu < baseline %llu "
                    "(refresh the baseline to lock in)\n",
                    Name.c_str(), Row.Key,
                    static_cast<unsigned long long>(Row.Now),
                    static_cast<unsigned long long>(Want));
      }
    }
  }
  // A workload in this run but not in the baseline is never gated; say
  // so loudly instead of letting the gate's coverage erode silently.
  for (const auto &N : All)
    if (!WL->get(N.Name))
      std::printf("  %-12s UNGATED: not in baseline (refresh with "
                  "--write-baseline to gate it)\n",
                  N.Name.c_str());
  if (Regressions == 0)
    std::printf("  OK: no workload regressed its dynamic-check count or "
                "simulated cost\n");
  return Regressions;
}

/// Writes the per-workload current-vs-baseline deltas as a GitHub-flavoured
/// markdown table (for $GITHUB_STEP_SUMMARY). Workloads absent from the
/// baseline show "—" instead of a delta.
void writeSummary(const std::vector<WorkloadNumbers> &All, bool Profile,
                  const std::string &BaselinePath,
                  const std::string &Path) {
  JsonValue Doc;
  std::string Err;
  const JsonValue *WL = nullptr;
  if (!BaselinePath.empty() && parseJsonFile(BaselinePath, Doc, Err))
    WL = Doc.get("workloads");

  std::string Out;
  Out += "### bench-regression: dynamic checks, metadata ops, and "
         "simulated cost\n\n";
  Out += "| workload | checks_full | baseline | Δ | metadata_ops | "
         "baseline | Δ | sim_cost_full | baseline | Δ |\n";
  Out += "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  auto Fmt = [](uint64_t V) { return std::to_string(V); };
  auto Delta = [](uint64_t Now, const JsonValue *Base) -> std::string {
    if (!Base || !Base->isNumber())
      return "—";
    int64_t D = static_cast<int64_t>(Now) - Base->asInt();
    if (D == 0)
      return "0";
    std::string S = std::to_string(D);
    return D > 0 ? "**+" + S + "**" : S;
  };
  for (const auto &N : All) {
    const JsonValue *E = WL ? WL->get(N.Name) : nullptr;
    const JsonValue *BC = E ? E->get("checks_full") : nullptr;
    const JsonValue *BM = E ? E->get("meta_ops_full") : nullptr;
    const JsonValue *BS = E ? E->get("sim_cost_full") : nullptr;
    Out += "| " + N.Name + " | " + Fmt(N.Checks[1]) + " | " +
           (BC && BC->isNumber() ? Fmt(BC->asInt()) : std::string("—")) +
           " | " + Delta(N.Checks[1], BC) + " | " + Fmt(N.MetaOps[1]) +
           " | " +
           (BM && BM->isNumber() ? Fmt(BM->asInt()) : std::string("—")) +
           " | " + Delta(N.MetaOps[1], BM) + " | " + Fmt(N.SimCost[1]) +
           " | " +
           (BS && BS->isNumber() ? Fmt(BS->asInt()) : std::string("—")) +
           " | " + Delta(N.SimCost[1], BS) + " |\n";
  }
  Out += "\nΔ > 0 (bold) regresses the gate; metadata_ops = meta.loads + "
         "meta.stores (full-opt run); sim_cost = checks×3 + "
         "meta-lookups×lookupCost + meta-stores×updateCost + "
         "hull-guard tests×1.\n";
  if (Profile) {
    // --profile: hot-site tables per workload (docs/observability.md).
    // Site IDs and counts are deterministic, so this section diffs
    // cleanly between CI runs.
    Out += "\n### profile: hottest check/metadata sites (full-opt, "
           "shadow facility)\n";
    for (const auto &N : All) {
      Out += "\n**" + N.Name + "** (" + std::to_string(N.SitesLive) +
             " of " + std::to_string(N.SitesTotal) + " sites live)\n\n";
      Out += "| site | kind | guarded | executed | guard elided | "
             "fallback fired | sim cost |\n";
      Out += "|---|---|---|---:|---:|---:|---:|\n";
      size_t Shown = 0;
      for (const auto &S : N.HotSites) {
        if (Shown++ >= MaxSummarySites)
          break;
        Out += "| `" + S.Site + "` | " + S.Kind + " | " +
               (S.Guarded ? "yes" : "no") + " | " +
               std::to_string(S.Executed) + " | " +
               std::to_string(S.GuardElided) + " | " +
               std::to_string(S.FallbackFired) + " | " +
               std::to_string(S.SimCost) + " |\n";
      }
    }
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath, BaselinePath, WriteBaselinePath, SummaryPath,
      TracePath;
  bool Profile = false;
  bool LockFree = false;
  unsigned Lanes = 1, Shards = 1;
  std::set<std::string> OnlyWorkloads;
  for (int I = 1; I < argc; ++I) {
    auto NeedArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = NeedArg("--json");
    else if (std::strcmp(argv[I], "--baseline") == 0)
      BaselinePath = NeedArg("--baseline");
    else if (std::strcmp(argv[I], "--write-baseline") == 0)
      WriteBaselinePath = NeedArg("--write-baseline");
    else if (std::strcmp(argv[I], "--summary") == 0)
      SummaryPath = NeedArg("--summary");
    else if (std::strcmp(argv[I], "--profile") == 0)
      Profile = true;
    else if (std::strcmp(argv[I], "--trace") == 0)
      TracePath = NeedArg("--trace");
    else if (std::strcmp(argv[I], "--workload") == 0)
      OnlyWorkloads.insert(NeedArg("--workload"));
    else if (std::strcmp(argv[I], "--lanes") == 0)
      Lanes = static_cast<unsigned>(std::atoi(NeedArg("--lanes")));
    else if (std::strcmp(argv[I], "--shards") == 0)
      Shards = static_cast<unsigned>(std::atoi(NeedArg("--shards")));
    else if (std::strcmp(argv[I], "--lockfree") == 0)
      LockFree = true;
    else {
      std::fprintf(stderr,
                   "unknown flag '%s' (flags: --json <path>, --baseline "
                   "<path>, --write-baseline <path>, --summary <path>, "
                   "--profile, --trace <path>, --workload <name>, "
                   "--lanes <N>, --shards <N>, --lockfree)\n",
                   argv[I]);
      return 2;
    }
  }
  if (Lanes == 0 || Shards == 0) {
    std::fprintf(stderr, "--lanes/--shards require a positive count\n");
    return 2;
  }
  if (Lanes > 1 && (!BaselinePath.empty() || !WriteBaselinePath.empty())) {
    // Lane counters are summed, so an N-lane run's counts are N times
    // the baseline's single-lane counts by construction.
    std::fprintf(stderr, "--lanes > 1 cannot be combined with --baseline "
                         "or --write-baseline\n");
    return 2;
  }
  if (!OnlyWorkloads.empty()) {
    // A filtered run is not the suite the baseline describes; gating (or
    // refreshing) against it would corrupt the gate's meaning.
    if (!BaselinePath.empty() || !WriteBaselinePath.empty()) {
      std::fprintf(stderr, "--workload cannot be combined with --baseline "
                           "or --write-baseline\n");
      return 2;
    }
    for (const auto &Name : OnlyWorkloads) {
      bool Known = false;
      for (const auto &W : benchmarkSuite())
        Known = Known || W.Name == Name;
      if (!Known) {
        std::fprintf(stderr, "--workload %s: not in the benchmark suite\n",
                     Name.c_str());
        return 2;
      }
    }
  }
  // One shared sink: pipeline timings + trace events from the profiled
  // builds, VM phase events and facility telemetry from the profiled
  // runs. Null stays null when neither flag is given — the zero-cost
  // disabled mode (docs/observability.md).
  Telemetry Telem;
  const bool DoTelemetry = Profile || !TracePath.empty();

  std::printf("=== Figure 2: runtime overhead of SoftBound ===\n");
  std::printf("(percent overhead in simulated cycles vs uninstrumented;\n"
              " two metadata facilities x two checking modes)\n\n");

  TablePrinter T({"benchmark", "base Mcycles", "hash-full %", "shadow-full %",
                  "hash-store %", "shadow-store %", "wall x(shadow-full)"});

  std::vector<WorkloadNumbers> All;
  double Sum[4] = {0, 0, 0, 0};
  int UnderFifteenStore = 0;
  int N = 0;

  for (const auto &W : benchmarkSuite()) {
    if (!OnlyWorkloads.empty() && !OnlyWorkloads.count(W.Name))
      continue;
    WorkloadNumbers Num;
    Num.Name = W.Name;

    BuildResult Base = mustBuild(W.Source, BuildOptions{});
    RunOptions BaseR;
    BaseR.Lanes = Lanes; // Same lane count as the instrumented runs, so
                         // overhead ratios compare like with like.
    Measurement MBase = measure(Base, BaseR);
    if (!MBase.R.ok()) {
      std::fprintf(stderr, "%s baseline failed: %s\n", W.Name.c_str(),
                   MBase.R.Message.c_str());
      return 1;
    }
    Num.BaseCycles = MBase.R.Counters.Cycles;

    for (int C = 0; C < 4; ++C) {
      BuildOptions B;
      B.Instrument = true;
      B.SB.Mode = Configs[C].Mode;
      BuildResult Prog = mustBuild(W.Source, B);
      RunOptions R;
      R.Facility = Configs[C].Facility;
      R.Lanes = Lanes;
      R.FacilityShards = Shards;
      R.LockFreeReads = LockFree;
      Measurement M = measure(Prog, R);
      if (!M.R.ok()) {
        std::fprintf(stderr, "%s/%s failed: trap=%s msg=%s\n", W.Name.c_str(),
                     Configs[C].Name, trapName(M.R.Trap),
                     M.R.Message.c_str());
        return 1;
      }
      if (M.R.ExitCode != MBase.R.ExitCode) {
        // With one lane this is a hard correctness failure. With several
        // lanes racing on the shared heap allocator, address-dependent
        // workloads (bh, mst, compress checksums...) legitimately differ
        // run to run, so divergence only warrants a warning.
        if (Lanes == 1) {
          std::fprintf(stderr, "%s/%s diverged: trap=%s exit=%lld vs %lld\n",
                       W.Name.c_str(), Configs[C].Name, trapName(M.R.Trap),
                       static_cast<long long>(M.R.ExitCode),
                       static_cast<long long>(MBase.R.ExitCode));
          return 1;
        }
        std::fprintf(stderr,
                     "note: %s/%s exit %lld vs %lld under %u lanes "
                     "(address-dependent workload over a shared heap)\n",
                     W.Name.c_str(), Configs[C].Name,
                     static_cast<long long>(M.R.ExitCode),
                     static_cast<long long>(MBase.R.ExitCode), Lanes);
      }
      Num.OverheadPct[C] = overheadPct(M.R.Counters.Cycles, Num.BaseCycles);
      Sum[C] += Num.OverheadPct[C];
      if (C == 1 && MBase.WallSeconds > 0)
        Num.WallRatio = M.WallSeconds / MBase.WallSeconds;
    }
    if (Num.OverheadPct[3] < 15.0)
      ++UnderFifteenStore;
    ++N;

    T.addRow({W.Name, TablePrinter::fmt(Num.BaseCycles / 1e6, 2),
              TablePrinter::fmt(Num.OverheadPct[0], 1),
              TablePrinter::fmt(Num.OverheadPct[1], 1),
              TablePrinter::fmt(Num.OverheadPct[2], 1),
              TablePrinter::fmt(Num.OverheadPct[3], 1),
              TablePrinter::fmt(Num.WallRatio, 2)});
    All.push_back(std::move(Num));
  }

  if (N == 0) {
    std::fprintf(stderr, "no workloads selected\n");
    return 2;
  }
  T.addRow({"average", "", TablePrinter::fmt(Sum[0] / N, 1),
            TablePrinter::fmt(Sum[1] / N, 1), TablePrinter::fmt(Sum[2] / N, 1),
            TablePrinter::fmt(Sum[3] / N, 1), ""});
  T.print();

  // ------------------------------------------------------------------
  // Static check optimization (opt/checks/): dynamic checks executed with
  // the subsystem off vs on, and the static elimination rate. The checks
  // counter is facility-independent (both facilities execute the same
  // instrumented module), so one table covers hash and shadow runs.
  // ------------------------------------------------------------------
  std::printf("\n=== Check optimization: dynamic checks executed ===\n\n");
  TablePrinter C({"benchmark", "full unopt", "full opt", "red %",
                  "store unopt", "store opt", "red %", "static elim %",
                  "sim-cost full", "guards"});
  // Workloads dominated by counted loops, where hull hoisting applies; the
  // pointer-chasing Olden kernels keep their inherently dynamic checks.
  const std::set<std::string> CountedLoopSet = {"lbm", "hmmer", "compress",
                                                "ijpeg"};
  double CountedRedSum = 0;
  int CountedN = 0;
  bool CountedAllOver30 = true;
  for (auto &Num : All) {
    const Workload &W = mustFindWorkload(Num.Name);
    double ElimRate = 0;
    for (int K = 0; K < 4; ++K) {
      BuildOptions B;
      B.Instrument = true;
      B.SB.Mode = K < 2 ? CheckMode::Full : CheckMode::StoreOnly;
      B.CheckOpt.Enable = K % 2 == 1;
      // K == 1 is the default pipeline (full checking, checkopt on): the
      // run --profile / --trace observe. Telemetry attaches only there,
      // and only when requested, so the gated runs keep the null sink.
      const bool Observed = K == 1 && DoTelemetry;
      PipelinePlan Plan = planFromBuildOptions(W.Source, B);
      if (Observed)
        Plan.telemetry(&Telem, Num.Name + ":");
      BuildResult Prog = mustBuild(Plan);
      SiteProfile Prof;
      RunOptions R;
      R.Lanes = Lanes;
      R.FacilityShards = Shards;
      R.LockFreeReads = LockFree;
      if (Observed) {
        R.Telem = &Telem;
        R.ProfileOut = &Prof;
        R.TraceTag = Num.Name + ":";
      }
      if (K == 1)
        R.MetaStatsOut = &Num.MetaStats;
      Measurement M = measure(Prog, R);
      if (!M.R.ok()) {
        std::fprintf(stderr, "%s checkopt run failed: %s\n", W.Name.c_str(),
                     M.R.Message.c_str());
        return 1;
      }
      Num.Checks[K] = M.R.Counters.Checks;
      Num.MetaOps[K] = M.R.Counters.MetaLoads + M.R.Counters.MetaStores;
      // Simulated checking cost of the measured (shadow-facility) run.
      ShadowSpaceMetadata ShadowCosts;
      Num.SimCost[K] = simCost(M.R.Counters, ShadowCosts);
      if (K == 1) {
        ElimRate = 100.0 * Prog.Stats.CheckOpt.eliminationRate();
        Num.CheckOpt = Prog.Pipeline.CheckOpt;
        Num.Timings = Prog.Pipeline.Passes;
        Num.CheckGuards = M.R.Counters.CheckGuards;
        Num.GuardSkips = M.R.Counters.GuardSkips;
        if (Observed && Profile)
          fillHotSites(Num, *Prog.M, Prof);
      }
    }
    double RedFull =
        Num.Checks[0]
            ? 100.0 * (1.0 - double(Num.Checks[1]) / Num.Checks[0])
            : 0;
    double RedStore =
        Num.Checks[2]
            ? 100.0 * (1.0 - double(Num.Checks[3]) / Num.Checks[2])
            : 0;
    if (CountedLoopSet.count(Num.Name)) {
      CountedRedSum += RedFull;
      ++CountedN;
      if (RedFull < 30.0)
        CountedAllOver30 = false;
    }
    C.addRow({Num.Name, std::to_string(Num.Checks[0]),
              std::to_string(Num.Checks[1]), TablePrinter::fmt(RedFull, 1),
              std::to_string(Num.Checks[2]), std::to_string(Num.Checks[3]),
              TablePrinter::fmt(RedStore, 1), TablePrinter::fmt(ElimRate, 1),
              std::to_string(Num.SimCost[1]),
              std::to_string(Num.CheckGuards)});
  }
  C.print();
  if (CountedN > 0) {
    std::printf("\ncheck-optimization shape checks:\n");
    std::printf("  counted-loop workloads >=30%% fewer checks:  %s "
                "(avg %.1f%% over %d benchmarks)\n",
                CountedAllOver30 ? "yes" : "NO", CountedRedSum / CountedN,
                CountedN);
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  hash-full avg > shadow-full avg:          %s (%.1f%% vs "
              "%.1f%%; paper: 127%% vs 79%%)\n",
              Sum[0] > Sum[1] ? "yes" : "NO", Sum[0] / N, Sum[1] / N);
  std::printf("  shadow-full avg > shadow-store avg:       %s (%.1f%% vs "
              "%.1f%%; paper: 79%% vs 32%%)\n",
              Sum[1] > Sum[3] ? "yes" : "NO", Sum[1] / N, Sum[3] / N);
  std::printf("  store-only <15%% for >= half of suite:     %s (%d of %d; "
              "paper: more than half)\n",
              UnderFifteenStore * 2 >= N ? "yes" : "NO", UnderFifteenStore,
              N);

  if (!JsonPath.empty())
    writeJson(All, Profile, Lanes, Shards, LockFree, JsonPath);
  if (!TracePath.empty()) {
    if (!Telem.writeChromeTrace(TracePath)) {
      std::fprintf(stderr, "cannot write %s\n", TracePath.c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu events)\n", TracePath.c_str(),
                Telem.traceEvents().size());
  }
  if (!WriteBaselinePath.empty())
    writeBaseline(All, WriteBaselinePath);
  if (!SummaryPath.empty())
    writeSummary(All, Profile, BaselinePath, SummaryPath);
  if (!BaselinePath.empty() && compareBaseline(All, BaselinePath) > 0)
    return 1;
  return 0;
}
