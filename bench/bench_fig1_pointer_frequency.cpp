//===- bench/bench_fig1_pointer_frequency.cpp - Figure 1 --------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 1: the percentage of memory operations that load or
/// store a pointer (and thus require a metadata access), per benchmark,
/// in the paper's sorted order. Paper's qualitative claims: several
/// benchmarks under 5% (five of the seven SPEC kernels), several Olden
/// kernels above 50%.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

int main() {
  std::printf("=== Figure 1: frequency of pointer memory operations ===\n");
  std::printf("(percentage of loads+stores that move a pointer value;\n"
              " benchmarks in the paper's sorted order, SPEC vs Olden)\n\n");

  TablePrinter T({"benchmark", "suite", "mem ops", "ptr loads", "ptr stores",
                  "% pointer ops"});
  double Prev = -1.0;
  bool Sorted = true;
  for (const auto &W : benchmarkSuite()) {
    BuildResult Prog = mustBuild(W.Source, BuildOptions{});
    Measurement M = measure(Prog);
    if (!M.R.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", W.Name.c_str(),
                   M.R.Message.c_str());
      return 1;
    }
    const VMCounters &C = M.R.Counters;
    double Pct = C.ptrOpFraction() * 100.0;
    T.addRow({W.Name, W.Suite, std::to_string(C.memOps()),
              std::to_string(C.PtrLoads), std::to_string(C.PtrStores),
              TablePrinter::fmt(Pct, 1)});
    if (Pct + 3.0 < Prev) // Allow small non-monotonic wiggle.
      Sorted = false;
    Prev = Pct;
  }
  T.print();
  std::printf("\nshape check: ordering ascending (±3%%): %s\n",
              Sorted ? "yes" : "NO");
  return 0;
}
