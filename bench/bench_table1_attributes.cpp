//===- bench/bench_table1_attributes.cpp - Table 1 --------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 (the qualitative attribute matrix). SoftBound's row
/// is *measured* by probe programs; the related-work rows reproduce the
/// paper's characterization of each scheme (we implement the object-table
/// and no-shrink behaviours, so two of those cells are measured too).
///
/// Attributes: no source change / complete (sub-field) / memory layout
/// unchanged / arbitrary casts / dynamically-linked (separate)
/// compilation.
///
//===----------------------------------------------------------------------===//

#include "baselines/ObjectTableChecker.h"
#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

namespace {

/// Sub-object overflow probe (§2.1's example, data-field variant).
const char *SubObjectProbe = R"(
struct node { char str[8]; int count; };
int main() {
  struct node n;
  n.count = 7;
  char* p = n.str;
  for (int i = 0; i < 10; i++) p[i] = 'x';   /* 2 bytes into count */
  return n.count;
}
)";

/// Arbitrary-cast probe: pointer round-trips through a differently-typed
/// view and is then used correctly; a checker must neither trap this
/// (compatibility) nor lose the ability to catch the later overflow.
const char *WildCastProbe = R"(
struct pair { long a; long b; };
int main() {
  struct pair* p = (struct pair*)malloc(sizeof(struct pair));
  long* view = (long*)p;          /* wild view of the struct */
  view[0] = 11;
  view[1] = 31;
  char* bytes = (char*)view;
  struct pair* back = (struct pair*)bytes;
  int ok = (back->a + back->b == 42);
  if (!ok) return 1;
  view[2] = 9;                    /* one word past the object */
  return 0;
}
)";

/// Memory-layout probe: code that depends on the C struct layout
/// (byte-level checksum over a struct). Fat-pointer schemes change this.
const char *LayoutProbe = R"(
struct rec { int a; char tag; int b; };
int main() {
  struct rec r;
  r.a = 1; r.tag = 2; r.b = 3;
  if (sizeof(struct rec) != 12) return 1;
  char* bytes = (char*)&r;
  long sum = 0;
  for (int i = 0; i < 12; i++) sum += bytes[i];
  return sum == 6 ? 0 : 2;
}
)";

bool softboundDetects(const char *Src) {
  BuildOptions B;
  B.Instrument = true;
  return runSession(planFromBuildOptions(Src, B)).Combined.violationDetected();
}

bool softboundRunsClean(const char *Src) {
  BuildOptions B;
  B.Instrument = true;
  RunResult R = runSession(planFromBuildOptions(Src, B)).Combined;
  return R.ok() && R.ExitCode == 0;
}

} // namespace

int main() {
  std::printf("=== Table 1: scheme attribute comparison ===\n\n");

  // Measured probes for SoftBound.
  bool SubObject = softboundDetects(SubObjectProbe);

  // Wild-cast probe: the benign part must run clean AND the trailing
  // overflow must be caught.
  BuildOptions B;
  B.Instrument = true;
  RunResult WC = runSession(planFromBuildOptions(WildCastProbe, B)).Combined;
  bool WildCasts = WC.violationDetected(); // Overflow caught after casts.
  bool Layout = softboundRunsClean(LayoutProbe);

  // No-source-change: the whole 15-benchmark suite + 2 servers transformed
  // unmodified (this is what the workload test suite asserts); probe one
  // pointer-heavy kernel here.
  BuildOptions BT;
  BT.Instrument = true;
  RunResult Tr =
      runSession(planFromBuildOptions(benchmarkSuite()[14].Source, BT))
          .Combined;
  bool NoSrcChange = Tr.ok();

  // Separate compilation: the transformation is purely intra-procedural —
  // measured by transforming a callee-only module probe (the pass never
  // inspects call targets' bodies). We assert via the pass stats that no
  // whole-program analysis ran (it has no such phase), and demonstrate
  // that an indirect call through a transformed signature works.
  const char *SepProbe = R"(
int apply(int (*f)(int), int x) { return f(x); }
int twice(int x) { return 2 * x; }
int main() { return apply(twice, 21) == 42 ? 0 : 1; }
)";
  bool SepComp = softboundRunsClean(SepProbe);

  // Object-table baseline: measured sub-object miss.
  ObjectTableChecker OT;
  RunOptions ROT;
  ROT.Checker = &OT;
  ROT.RedzonePad = 16;
  ROT.GlobalPad = 16;
  bool ObjTableSubObject =
      runSession(planFromBuildOptions(SubObjectProbe, BuildOptions{}), ROT)
          .Combined.violationDetected();

  // MSCC-like (no shrink) measured sub-object miss.
  BuildOptions BM;
  BM.Instrument = true;
  BM.SB.ShrinkBounds = false;
  bool MsccSubObject = runSession(planFromBuildOptions(SubObjectProbe, BM))
                           .Combined.violationDetected();

  TablePrinter T({"scheme", "no src change", "complete (subfield)",
                  "memory layout", "arbitrary casts", "dyn-link lib"});
  T.addRow({"SafeC [paper]", "yes", "yes", "no", "yes", "no"});
  T.addRow({"JKRLDA (objtable, measured subfield)", "yes",
            ObjTableSubObject ? "yes(!)" : "no", "yes", "yes", "yes"});
  T.addRow({"CCured Safe/Seq [paper]", "no", "yes", "no", "no", "no"});
  T.addRow({"CCured Wild [paper]", "yes", "yes", "no", "yes", "no"});
  T.addRow({"MSCC (no-shrink mode, measured subfield)", "yes",
            MsccSubObject ? "yes(!)" : "no", "yes", "no", "yes"});
  T.addRow({"SoftBound (measured)", NoSrcChange ? "yes" : "NO",
            SubObject ? "yes" : "NO", Layout ? "yes" : "NO",
            WildCasts ? "yes" : "NO", SepComp ? "yes" : "NO"});
  T.print();

  bool Ok = NoSrcChange && SubObject && Layout && WildCasts && SepComp &&
            !ObjTableSubObject && !MsccSubObject;
  std::printf("\nSoftBound satisfies all five attributes; baselines miss "
              "sub-object overflows: %s\n",
              Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
