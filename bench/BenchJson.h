//===- bench/BenchJson.h - minimal JSON emit/parse for bench gating -*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependency-free JSON layer underneath `--json` / `--baseline` on
/// the bench binaries. Two halves:
///
///   * JsonWriter — streaming writer with just the shapes the benches
///     emit (objects, arrays, strings, integers, doubles).
///   * JsonValue / parseJson — a small recursive-descent reader for the
///     committed baseline files (bench/baselines/*.json). It accepts the
///     JSON subset the writer produces; it is not a general validator.
///
/// The CI bench-regression gate compares deterministic dynamic-check
/// counts, so the files round-trip exactly; timings are emitted for
/// artifact upload but never compared.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_BENCH_BENCHJSON_H
#define SOFTBOUND_BENCH_BENCHJSON_H

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace softbound {
namespace benchjson {

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Streaming JSON writer with automatic comma placement and two-space
/// indentation. Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("workloads"); W.beginObject(); ... W.endObject();
///   W.endObject();
///   W.writeTo(Path);
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string &K) {
    comma();
    indent();
    Out += quote(K) + ": ";
    PendingValue = true;
  }

  void value(const std::string &S) { emit(quote(S)); }
  void value(const char *S) { emit(quote(S)); }
  void value(uint64_t V) { emit(std::to_string(V)); }
  void value(int64_t V) { emit(std::to_string(V)); }
  void value(int V) { emit(std::to_string(V)); }
  void value(unsigned V) { emit(std::to_string(V)); }
  void value(double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    emit(Buf);
  }

  template <typename T> void kv(const std::string &K, T V) {
    key(K);
    value(V);
  }

  const std::string &str() const { return Out; }

  /// Writes the document plus trailing newline; false on I/O failure.
  bool writeTo(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    bool OK = std::fwrite(Out.data(), 1, Out.size(), F) == Out.size();
    OK = std::fputc('\n', F) != EOF && OK;
    return std::fclose(F) == 0 && OK;
  }

private:
  static std::string quote(const std::string &S) {
    std::string Q = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\')
        Q += '\\';
      Q += C;
    }
    return Q + '"';
  }

  void open(char C) {
    if (!PendingValue) {
      comma();
      indent();
    }
    PendingValue = false;
    Out += C;
    ++Depth;
    NeedComma = false;
  }

  void close(char C) {
    --Depth;
    Out += '\n';
    indent();
    Out += C;
    NeedComma = true;
  }

  void emit(const std::string &V) {
    if (!PendingValue) {
      comma();
      indent();
    }
    PendingValue = false;
    Out += V;
    NeedComma = true;
  }

  void comma() {
    if (NeedComma)
      Out += ',';
    if (!Out.empty())
      Out += '\n';
    NeedComma = false;
  }

  void indent() { Out.append(static_cast<size_t>(Depth) * 2, ' '); }

  std::string Out;
  int Depth = 0;
  bool NeedComma = false;
  bool PendingValue = false;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K =
      Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
  /// Object keys in document order (Obj itself sorts alphabetically).
  /// writeJsonValue re-emits in this order, so a read-modify-write of a
  /// baseline file preserves the committed section layout.
  std::vector<std::string> ObjOrder;

  bool isObject() const { return K == Kind::Object; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object member lookup; null-kind value when absent or not an object.
  const JsonValue *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }

  int64_t asInt() const { return static_cast<int64_t>(Num); }
};

/// Parses \p Text; returns false (with a 1-based position in \p ErrAt) on
/// malformed input.
inline bool parseJson(const std::string &Text, JsonValue &Out,
                      size_t *ErrAt = nullptr) {
  size_t I = 0;
  auto Fail = [&](size_t At) {
    if (ErrAt)
      *ErrAt = At + 1;
    return false;
  };
  auto Skip = [&] {
    while (I < Text.size() && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
  };

  std::function<bool(JsonValue &)> Parse = [&](JsonValue &V) -> bool {
    Skip();
    if (I >= Text.size())
      return Fail(I);
    char C = Text[I];
    if (C == '{') {
      ++I;
      V.K = JsonValue::Kind::Object;
      Skip();
      if (I < Text.size() && Text[I] == '}') {
        ++I;
        return true;
      }
      while (true) {
        Skip();
        if (I >= Text.size() || Text[I] != '"')
          return Fail(I);
        JsonValue KeyV;
        if (!Parse(KeyV))
          return false;
        Skip();
        if (I >= Text.size() || Text[I] != ':')
          return Fail(I);
        ++I;
        if (V.Obj.find(KeyV.Str) == V.Obj.end())
          V.ObjOrder.push_back(KeyV.Str);
        JsonValue &Slot = V.Obj[KeyV.Str];
        if (!Parse(Slot))
          return false;
        Skip();
        if (I < Text.size() && Text[I] == ',') {
          ++I;
          continue;
        }
        if (I < Text.size() && Text[I] == '}') {
          ++I;
          return true;
        }
        return Fail(I);
      }
    }
    if (C == '[') {
      ++I;
      V.K = JsonValue::Kind::Array;
      Skip();
      if (I < Text.size() && Text[I] == ']') {
        ++I;
        return true;
      }
      while (true) {
        V.Arr.emplace_back();
        if (!Parse(V.Arr.back()))
          return false;
        Skip();
        if (I < Text.size() && Text[I] == ',') {
          ++I;
          continue;
        }
        if (I < Text.size() && Text[I] == ']') {
          ++I;
          return true;
        }
        return Fail(I);
      }
    }
    if (C == '"') {
      ++I;
      V.K = JsonValue::Kind::String;
      while (I < Text.size() && Text[I] != '"') {
        if (Text[I] == '\\') {
          ++I;
          if (I >= Text.size())
            return Fail(I);
        }
        V.Str += Text[I++];
      }
      if (I >= Text.size())
        return Fail(I);
      ++I; // Closing quote.
      return true;
    }
    if (Text.compare(I, 4, "true") == 0) {
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      I += 4;
      return true;
    }
    if (Text.compare(I, 5, "false") == 0) {
      V.K = JsonValue::Kind::Bool;
      I += 5;
      return true;
    }
    if (Text.compare(I, 4, "null") == 0) {
      I += 4;
      return true;
    }
    // Number.
    size_t Start = I;
    if (I < Text.size() && (Text[I] == '-' || Text[I] == '+'))
      ++I;
    while (I < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[I])) ||
            Text[I] == '.' || Text[I] == 'e' || Text[I] == 'E' ||
            Text[I] == '-' || Text[I] == '+'))
      ++I;
    if (I == Start)
      return Fail(I);
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(Text.substr(Start, I - Start).c_str(), nullptr);
    return true;
  };

  if (!Parse(Out))
    return false;
  Skip();
  return I == Text.size() || Fail(I);
}

/// Re-emits a parsed value through \p W (document key order preserved
/// via ObjOrder). Lets one bench rewrite its own baseline section while
/// carrying every other bench's sections through untouched. Integral
/// numbers round-trip without a decimal point.
inline void writeJsonValue(JsonWriter &W, const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    // The benches never emit null; a quoted placeholder keeps the
    // round-trip total without teaching JsonWriter raw tokens.
    W.value("null");
    return;
  case JsonValue::Kind::Bool:
    // JsonWriter has no bool shape (the benches emit bools as 0/1).
    W.value(V.B ? 1 : 0);
    return;
  case JsonValue::Kind::Number: {
    double Whole;
    if (std::modf(V.Num, &Whole) == 0.0 && V.Num >= -9.2e18 && V.Num <= 9.2e18)
      W.value(static_cast<int64_t>(V.Num));
    else
      W.value(V.Num);
    return;
  }
  case JsonValue::Kind::String:
    W.value(V.Str);
    return;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &E : V.Arr)
      writeJsonValue(W, E);
    W.endArray();
    return;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const std::string &Key : V.ObjOrder) {
      W.key(Key);
      writeJsonValue(W, V.Obj.at(Key));
    }
    W.endObject();
    return;
  }
}

/// Reads and parses \p Path; false when unreadable or malformed.
inline bool parseJsonFile(const std::string &Path, JsonValue &Out,
                          std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  size_t At = 0;
  if (!parseJson(Text, Out, &At)) {
    Err = Path + ": malformed JSON near byte " + std::to_string(At);
    return false;
  }
  return true;
}

} // namespace benchjson
} // namespace softbound

#endif // SOFTBOUND_BENCH_BENCHJSON_H
