//===- bench/bench_table4_bugbench.cpp - Table 4 ----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 4: detection of the BugBench overflow kernels by a
/// Valgrind-style red-zone checker, a Mudflap-style object table, and
/// SoftBound (store-only and full). Paper's matrix:
///
///   go:        valgrind no, mudflap no,  store no,  full yes
///   compress:  valgrind no, mudflap yes, store yes, full yes
///   polymorph: valgrind yes, mudflap yes, store yes, full yes
///   gzip:      valgrind yes, mudflap yes, store yes, full yes
///
//===----------------------------------------------------------------------===//

#include "baselines/MemcheckLite.h"
#include "baselines/ObjectTableChecker.h"
#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

namespace {

const char *yn(bool B) { return B ? "yes" : "no"; }

} // namespace

int main() {
  std::printf("=== Table 4: BugBench overflow detection matrix ===\n\n");
  TablePrinter T({"benchmark", "bug class", "valgrind", "mudflap",
                  "sb-store", "sb-full"});

  const bool Paper[4][4] = {{false, false, false, true},
                            {false, true, true, true},
                            {true, true, true, true},
                            {true, true, true, true}};
  bool AllMatch = true;
  int Idx = 0;
  for (const auto &Bug : bugbenchSuite()) {
    BuildResult Plain = mustBuild(Bug.Source, BuildOptions{});

    MemcheckLite MC;
    RunOptions RMC;
    RMC.Checker = &MC;
    RMC.RedzonePad = MemcheckLite::RecommendedRedzone;
    bool Valgrind = runSession(Plain, RMC).Combined.violationDetected();

    ObjectTableChecker OT;
    RunOptions ROT;
    ROT.Checker = &OT;
    ROT.RedzonePad = 16;
    ROT.GlobalPad = 16;
    bool Mudflap = runSession(mustBuild(Bug.Source, BuildOptions{}), ROT)
                       .Combined.violationDetected();

    BuildOptions BS;
    BS.Instrument = true;
    BS.SB.Mode = CheckMode::StoreOnly;
    bool Store =
        runSession(mustBuild(Bug.Source, BS)).Combined.violationDetected();

    BuildOptions BF;
    BF.Instrument = true;
    BF.SB.Mode = CheckMode::Full;
    bool Full =
        runSession(mustBuild(Bug.Source, BF)).Combined.violationDetected();

    bool Match = Valgrind == Paper[Idx][0] && Mudflap == Paper[Idx][1] &&
                 Store == Paper[Idx][2] && Full == Paper[Idx][3];
    AllMatch &= Match;
    T.addRow({Bug.Name, Bug.BugClass, yn(Valgrind), yn(Mudflap), yn(Store),
              yn(Full)});
    ++Idx;
  }
  T.print();
  std::printf("\nmatrix matches the paper's Table 4: %s\n",
              AllMatch ? "yes" : "NO");
  return AllMatch ? 0 : 1;
}
