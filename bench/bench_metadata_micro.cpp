//===- bench/bench_metadata_micro.cpp - §5.1 facility microbench ------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the two §5.1 metadata facilities: update/lookup
/// throughput (hit and miss), occupancy sweeps for the hash table
/// (collision behaviour), and range clearing. The modelled instruction
/// costs (9 vs 5) are reported alongside for cross-reference.
///
/// Two front ends over the same measurement kernels:
///
///   --json <path>   deterministic sweep emitted through BenchJson.h —
///                   the machine-readable face every other bench binary
///                   already has. Includes the hash table's measured
///                   collision counts per occupancy, which is what
///                   grounds bench_fig2_overhead's simulated-cost model
///                   (lookupCost ≈ 9 only while probe chains stay short).
///                   Wall-clock ns/op numbers are included for artifact
///                   consumers but are machine-dependent; only the
///                   deterministic fields (op counts, collisions, load
///                   factors, modelled costs, memory) are stable.
///
///   (no flag)       the google-benchmark harness, when the library is
///                   available at build time (SB_HAVE_GBENCH); otherwise
///                   a note pointing at --json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "support/RNG.h"
#include "support/Telemetry.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if SB_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

using namespace softbound;

namespace {

/// Fills \p M with \p N pointer slots spread over a heap-like range.
template <typename Facility>
void fill(Facility &M, uint64_t N) {
  RNG R(7);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 22) << 3);
    M.update(Addr, Addr, Addr + 64);
  }
}

double nsPerOp(std::chrono::steady_clock::time_point T0, uint64_t Ops) {
  auto T1 = std::chrono::steady_clock::now();
  return Ops ? std::chrono::duration<double, std::nano>(T1 - T0).count() /
                   static_cast<double>(Ops)
             : 0.0;
}

/// Emits a facility probe-length distribution (docs/observability.md):
/// summary stats plus the non-empty power-of-two buckets as
/// {"le": <bucket upper bound>, "count": N} pairs. The shadow space never
/// probes, so its histogram is legitimately empty.
void writeProbeHist(benchjson::JsonWriter &W, const TelemetryHistogram &H) {
  W.kv("probe_count", H.count());
  W.kv("probe_mean", H.mean());
  W.kv("probe_max", H.max());
  W.key("probe_length_hist");
  W.beginArray();
  for (unsigned B = 0; B < TelemetryHistogram::NumBuckets; ++B) {
    if (!H.bucketCount(B))
      continue;
    W.beginObject();
    W.kv("le", TelemetryHistogram::bucketHi(B));
    W.kv("count", H.bucketCount(B));
    W.endObject();
  }
  W.endArray();
}

/// One facility's deterministic sweep: update, hit-lookup, miss-lookup,
/// clear-range — emitted as one JSON object.
template <typename Facility>
void jsonSweep(benchjson::JsonWriter &W, const char *Name) {
  constexpr uint64_t N = 1 << 14;
  W.key(Name);
  W.beginObject();

  Facility M;
  Telemetry Telem;
  const std::string Prefix = std::string("facility/") + Name;
  M.attachTelemetry(&Telem, Prefix);
  W.kv("modeled_lookup_cost", M.lookupCost());
  W.kv("modeled_update_cost", M.updateCost());

  auto T0 = std::chrono::steady_clock::now();
  fill(M, N);
  W.kv("update_ops", N);
  W.kv("update_ns_per_op", nsPerOp(T0, N));

  // Hits: re-look-up the same addresses the fill touched.
  RNG R(7);
  T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < N; ++I)
    M.lookup(0x2000'0000 + (R.below(1 << 22) << 3));
  W.kv("lookup_hit_ops", N);
  W.kv("lookup_hit_ns_per_op", nsPerOp(T0, N));

  // Misses: an untouched range.
  RNG RM(13);
  T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < N; ++I)
    M.lookup(0x6000'0000 + (RM.below(1 << 20) << 3));
  W.kv("lookup_miss_ops", N);
  W.kv("lookup_miss_ns_per_op", nsPerOp(T0, N));

  W.kv("lookups", M.stats().Lookups);
  W.kv("updates", M.stats().Updates);
  W.kv("collisions", M.stats().Collisions);
  W.kv("memory_bytes", M.memoryBytes());

  T0 = std::chrono::steady_clock::now();
  uint64_t Cleared = M.clearRange(0x2000'0000, (1 << 22) << 3);
  W.kv("clear_range_entries", Cleared);
  W.kv("clear_range_ns", nsPerOp(T0, 1));

  M.flushTelemetry();
  writeProbeHist(W, Telem.histogram(Prefix + "/probe_length"));
  W.endObject();
}

/// Hash-table collision behaviour as occupancy grows (the shadow space
/// has no collisions by construction — §5.1's motivation for it). The
/// collisions-per-operation curve is the ground truth behind treating
/// lookupCost as a constant 9 in the simulated-cost model.
void jsonCollisionSweep(benchjson::JsonWriter &W) {
  W.key("hash_occupancy_sweep");
  W.beginArray();
  for (uint64_t N : {uint64_t(1) << 12, uint64_t(1) << 14, uint64_t(3) << 13}) {
    HashTableMetadata M(16); // 64k entries; no growth below 32k live.
    Telemetry Telem;
    M.attachTelemetry(&Telem, "facility/hash");
    RNG R(17);
    std::vector<uint64_t> Addrs;
    for (uint64_t I = 0; I < N; ++I) {
      uint64_t Addr = 0x2000'0000 + (R.below(1 << 18) << 3);
      M.update(Addr, Addr, Addr + 64);
      Addrs.push_back(Addr);
    }
    for (uint64_t A : Addrs)
      M.lookup(A);
    W.beginObject();
    W.kv("live_entries", N);
    W.kv("load_factor", M.loadFactor());
    W.kv("collisions", M.stats().Collisions);
    W.kv("collisions_per_kiloop",
         1000.0 * static_cast<double>(M.stats().Collisions) /
             static_cast<double>(2 * N));
    // The probe-length distribution at this occupancy: the per-operation
    // view of the same collision behaviour.
    writeProbeHist(W, Telem.histogram("facility/hash/probe_length"));
    W.endObject();
  }
  W.endArray();
}

/// Shard-scaling under contention, A/B over read-path models: a fixed
/// 4-thread op mix (deterministic per-thread address streams) hammers
/// one HashTableMetadata at increasing shard counts, once with the
/// shared-mutex Sharded model and once with LockFreeRead. With one
/// shard every thread serializes on one lock; with more shards the
/// address stripes spread the threads out and lock_contended collapses;
/// under LockFreeRead the read-heavy phase acquires nothing at all and
/// the interesting counters become seqlock_reads / seqlock_retries.
/// Wall-clock ns/op is machine-dependent; op totals and the monotone
/// story in lock_acquires are the stable part.
void jsonContendedSweep(benchjson::JsonWriter &W) {
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t OpsPerThread = 1 << 16;
  W.key("contended_sweep");
  W.beginArray();
  for (ConcurrencyModel Model :
       {ConcurrencyModel::Sharded, ConcurrencyModel::LockFreeRead}) {
    for (unsigned S : {1u, 2u, 4u, 8u}) {
      HashTableMetadata M(16, {Model, S});
      fill(M, 1 << 14);
      // Update-heavy phase: exclusive acquisitions serialize on a single
      // stripe lock in both models (the write path is identical), so this
      // is where shard count buys real parallelism (addresses span ~1024
      // stripes, far more than any shard count here).
      auto T0 = std::chrono::steady_clock::now();
      std::vector<std::thread> Threads;
      for (unsigned T = 0; T < NumThreads; ++T)
        Threads.emplace_back([&M, T] {
          RNG R(101 + T); // Per-thread stream: deterministic op sequence.
          for (uint64_t I = 0; I < OpsPerThread; ++I) {
            uint64_t Addr = 0x2000'0000 + (R.below(1 << 22) << 3);
            M.update(Addr, Addr, Addr + 64);
          }
        });
      for (auto &T : Threads)
        T.join();
      double UpdateNs = nsPerOp(T0, NumThreads * OpsPerThread);
      uint64_t WriteAcquires = M.stats().LockAcquires;
      // Read-heavy phase: Sharded shared acquisitions never exclude each
      // other, but with one shard every thread still bounces the same
      // lock word; sharding spreads that coherence traffic. LockFreeRead
      // sidesteps it entirely — zero acquisitions, seqlock-validated
      // copies, retries only when a concurrent writer's window overlaps.
      T0 = std::chrono::steady_clock::now();
      Threads.clear();
      for (unsigned T = 0; T < NumThreads; ++T)
        Threads.emplace_back([&M, T] {
          RNG R(211 + T);
          for (uint64_t I = 0; I < OpsPerThread; ++I) {
            Bounds B = M.lookup(0x2000'0000 + (R.below(1 << 22) << 3));
            (void)B;
          }
        });
      for (auto &T : Threads)
        T.join();
      double LookupNs = nsPerOp(T0, NumThreads * OpsPerThread);
      MetadataStats St = M.stats();
      W.beginObject();
      W.kv("model", Model == ConcurrencyModel::LockFreeRead ? "lockfree_read"
                                                            : "sharded");
      W.kv("shards", uint64_t(M.shards()));
      W.kv("threads", uint64_t(NumThreads));
      // On a single-hardware-thread host the OS timeslices the workers, so
      // neither lock_contended nor ns_per_op can show shard scaling; report
      // the host width so consumers can tell real serialization from that.
      W.kv("hw_threads", uint64_t(std::thread::hardware_concurrency()));
      W.kv("ops", 2 * uint64_t(NumThreads) * OpsPerThread);
      W.kv("update_ns_per_op", UpdateNs);
      W.kv("lookup_ns_per_op", LookupNs);
      W.kv("lock_acquires", St.LockAcquires);
      // Read-phase acquisitions: the LockFreeRead criterion is that this
      // stays zero (all acquisitions happened in the update phase).
      W.kv("read_phase_lock_acquires", St.LockAcquires - WriteAcquires);
      W.kv("lock_contended", St.LockContended);
      W.kv("seqlock_reads", St.SeqlockReads);
      W.kv("seqlock_retries", St.SeqlockRetries);
      W.kv("contention_sim_cost", St.contentionSimCost());
      W.endObject();
    }
  }
  W.endArray();
}

int runJson(const std::string &Path) {
  benchjson::JsonWriter W;
  W.beginObject();
  W.kv("schema", "softbound-bench-metadata-micro-v1");
  W.key("facilities");
  W.beginObject();
  jsonSweep<HashTableMetadata>(W, "hash");
  jsonSweep<ShadowSpaceMetadata>(W, "shadow");
  W.endObject();
  jsonCollisionSweep(W);
  jsonContendedSweep(W);
  W.endObject();
  if (!W.writeTo(Path)) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", Path.c_str());
  return 0;
}

} // namespace

#if SB_HAVE_GBENCH

namespace {

template <typename Facility>
void BM_Update(benchmark::State &State) {
  Facility M;
  RNG R(11);
  for (auto _ : State) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 20) << 3);
    M.update(Addr, Addr, Addr + 64);
  }
  State.SetItemsProcessed(State.iterations());
}

template <typename Facility>
void BM_LookupHit(benchmark::State &State) {
  Facility M;
  const uint64_t N = State.range(0);
  std::vector<uint64_t> Addrs;
  RNG R(7);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 22) << 3);
    M.update(Addr, Addr, Addr + 64);
    Addrs.push_back(Addr);
  }
  size_t I = 0;
  for (auto _ : State) {
    Bounds B = M.lookup(Addrs[I++ % Addrs.size()]);
    benchmark::DoNotOptimize(B.Base);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["modeled_insns_per_op"] =
      static_cast<double>(M.lookupCost());
}

template <typename Facility>
void BM_LookupMiss(benchmark::State &State) {
  Facility M;
  fill(M, 1 << 14);
  RNG R(13);
  for (auto _ : State) {
    // Slots in an untouched range: guaranteed misses.
    Bounds B = M.lookup(0x6000'0000 + (R.below(1 << 20) << 3));
    benchmark::DoNotOptimize(B.Bound);
  }
  State.SetItemsProcessed(State.iterations());
}

template <typename Facility>
void BM_ClearRange(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Facility M;
    for (uint64_t A = 0x2000'0000; A < 0x2000'0000 + 4096 * 8; A += 8)
      M.update(A, A, A + 64);
    State.ResumeTiming();
    benchmark::DoNotOptimize(M.clearRange(0x2000'0000, 4096 * 8));
  }
}

/// Hash-table collision behaviour as occupancy grows (see the JSON twin).
void BM_HashCollisions(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    HashTableMetadata M(16); // 64k entries; no growth below 32k live.
    RNG R(17);
    uint64_t N = State.range(0);
    std::vector<uint64_t> Addrs;
    for (uint64_t I = 0; I < N; ++I) {
      uint64_t Addr = 0x2000'0000 + (R.below(1 << 18) << 3);
      M.update(Addr, Addr, Addr + 64);
      Addrs.push_back(Addr);
    }
    State.ResumeTiming();
    for (uint64_t A : Addrs)
      M.lookup(A);
    State.counters["collisions_per_kiloop"] =
        1000.0 * static_cast<double>(M.stats().Collisions) /
        static_cast<double>(2 * N);
    State.counters["load_factor"] = M.loadFactor();
  }
}

} // namespace

BENCHMARK(BM_Update<HashTableMetadata>);
BENCHMARK(BM_Update<ShadowSpaceMetadata>);
BENCHMARK(BM_LookupHit<HashTableMetadata>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_LookupHit<ShadowSpaceMetadata>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_LookupMiss<HashTableMetadata>);
BENCHMARK(BM_LookupMiss<ShadowSpaceMetadata>);
BENCHMARK(BM_ClearRange<HashTableMetadata>);
BENCHMARK(BM_ClearRange<ShadowSpaceMetadata>);
BENCHMARK(BM_HashCollisions)->Arg(1 << 12)->Arg(1 << 14)->Arg(3 << 13);

#endif // SB_HAVE_GBENCH

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      return runJson(argv[I + 1]);
    }
#if SB_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "built without google-benchmark; use --json <path> for the "
               "deterministic sweep\n");
  return 2;
#endif
}
