//===- bench/bench_metadata_micro.cpp - §5.1 facility microbench ------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the two §5.1 metadata facilities:
/// update/lookup throughput (hit and miss), occupancy sweeps for the hash
/// table (collision behaviour), and range clearing. The modelled
/// instruction costs (9 vs 5) are printed alongside for cross-reference.
///
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "support/RNG.h"

#include <benchmark/benchmark.h>

using namespace softbound;

namespace {

/// Fills \p M with \p N pointer slots spread over a heap-like range.
template <typename Facility>
void fill(Facility &M, uint64_t N) {
  RNG R(7);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 22) << 3);
    M.update(Addr, Addr, Addr + 64);
  }
}

template <typename Facility>
void BM_Update(benchmark::State &State) {
  Facility M;
  RNG R(11);
  for (auto _ : State) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 20) << 3);
    M.update(Addr, Addr, Addr + 64);
  }
  State.SetItemsProcessed(State.iterations());
}

template <typename Facility>
void BM_LookupHit(benchmark::State &State) {
  Facility M;
  const uint64_t N = State.range(0);
  std::vector<uint64_t> Addrs;
  RNG R(7);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 22) << 3);
    M.update(Addr, Addr, Addr + 64);
    Addrs.push_back(Addr);
  }
  size_t I = 0;
  uint64_t Base, Bound;
  for (auto _ : State) {
    M.lookup(Addrs[I++ % Addrs.size()], Base, Bound);
    benchmark::DoNotOptimize(Base);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["modeled_insns_per_op"] =
      static_cast<double>(M.lookupCost());
}

template <typename Facility>
void BM_LookupMiss(benchmark::State &State) {
  Facility M;
  fill(M, 1 << 14);
  RNG R(13);
  uint64_t Base, Bound;
  for (auto _ : State) {
    // Slots in an untouched range: guaranteed misses.
    M.lookup(0x6000'0000 + (R.below(1 << 20) << 3), Base, Bound);
    benchmark::DoNotOptimize(Bound);
  }
  State.SetItemsProcessed(State.iterations());
}

template <typename Facility>
void BM_ClearRange(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Facility M;
    for (uint64_t A = 0x2000'0000; A < 0x2000'0000 + 4096 * 8; A += 8)
      M.update(A, A, A + 64);
    State.ResumeTiming();
    benchmark::DoNotOptimize(M.clearRange(0x2000'0000, 4096 * 8));
  }
}

/// Hash-table collision behaviour as occupancy grows (the shadow space has
/// no collisions by construction — §5.1's motivation for it).
void BM_HashCollisions(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    HashTableMetadata M(16); // 64k entries; no growth below 32k live.
    RNG R(17);
    uint64_t N = State.range(0);
    std::vector<uint64_t> Addrs;
    for (uint64_t I = 0; I < N; ++I) {
      uint64_t Addr = 0x2000'0000 + (R.below(1 << 18) << 3);
      M.update(Addr, Addr, Addr + 64);
      Addrs.push_back(Addr);
    }
    State.ResumeTiming();
    uint64_t Base, Bound;
    for (uint64_t A : Addrs)
      M.lookup(A, Base, Bound);
    State.counters["collisions_per_kiloop"] =
        1000.0 * static_cast<double>(M.stats().Collisions) /
        static_cast<double>(2 * N);
    State.counters["load_factor"] = M.loadFactor();
  }
}

} // namespace

BENCHMARK(BM_Update<HashTableMetadata>);
BENCHMARK(BM_Update<ShadowSpaceMetadata>);
BENCHMARK(BM_LookupHit<HashTableMetadata>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_LookupHit<ShadowSpaceMetadata>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_LookupMiss<HashTableMetadata>);
BENCHMARK(BM_LookupMiss<ShadowSpaceMetadata>);
BENCHMARK(BM_ClearRange<HashTableMetadata>);
BENCHMARK(BM_ClearRange<ShadowSpaceMetadata>);
BENCHMARK(BM_HashCollisions)->Arg(1 << 12)->Arg(1 << 14)->Arg(3 << 13);

BENCHMARK_MAIN();
