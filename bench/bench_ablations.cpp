//===- bench/bench_ablations.cpp - design-choice ablations ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out:
///   1. post-instrumentation re-optimization (redundant-check elimination,
///      §6.1) on vs off,
///   2. §5.2 memcpy pointer-free inference on vs off,
///   3. sub-object bound shrinking cost (it must be ~free),
///   4. object-table (splay) baseline cost on pointer-dense code — the
///      §2.1 claim that splay lookups are the bottleneck,
///   5. the static check-optimization subsystem (opt/checks/) with each
///      sub-pass (dominance RCE, range subsumption, loop hoisting)
///      toggled independently.
///
//===----------------------------------------------------------------------===//

#include "baselines/ObjectTableChecker.h"
#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

namespace {

const char *MemcpyHeavy = R"(
int main() {
  char* a = malloc(4096);
  char* b = malloc(4096);
  for (int i = 0; i < 4096; i++) a[i] = (char)(i % 100);
  for (int round = 0; round < 200; round++) {
    memcpy(b, a, 4096);
    memcpy(a, b, 4096);
  }
  long s = 0;
  for (int i = 0; i < 4096; i++) s += a[i];
  return (int)(s % 251);
}
)";

} // namespace

int main() {
  std::printf("=== Ablations ===\n\n");

  // 1. Re-optimization after instrumentation.
  {
    std::printf("-- 1. post-instrumentation check elimination (§6.1) --\n");
    TablePrinter T({"benchmark", "cycles w/ reopt", "cycles w/o",
                    "checks dedup'd", "saving %"});
    for (const auto &Name : {std::string("go"), std::string("compress"),
                             std::string("treeadd"), std::string("em3d")}) {
      const Workload *W = nullptr;
      for (const auto &Cand : benchmarkSuite())
        if (Cand.Name == Name)
          W = &Cand;
      BuildOptions On, Off;
      On.Instrument = Off.Instrument = true;
      Off.SB.ReoptimizeAfter = false;
      BuildResult POn = mustBuild(W->Source, On);
      BuildResult POff = mustBuild(W->Source, Off);
      Measurement MOn = measure(POn);
      Measurement MOff = measure(POff);
      T.addRow({Name, std::to_string(MOn.R.Counters.Cycles),
                std::to_string(MOff.R.Counters.Cycles),
                std::to_string(POn.Stats.ChecksEliminated),
                TablePrinter::fmt(100.0 * (1.0 -
                                           double(MOn.R.Counters.Cycles) /
                                               double(MOff.R.Counters.Cycles)),
                                  2)});
    }
    T.print();
  }

  // 2. memcpy metadata inference.
  {
    std::printf("\n-- 2. memcpy pointer-free inference (§5.2) --\n");
    BuildOptions Infer, Always;
    Infer.Instrument = Always.Instrument = true;
    Always.SB.InferMemcpyPointerFree = false;
    Measurement MI = measure(mustBuild(MemcpyHeavy, Infer));
    Measurement MA = measure(mustBuild(MemcpyHeavy, Always));
    std::printf("  inferred pointer-free: %llu cycles, %llu meta updates\n",
                static_cast<unsigned long long>(MI.R.Counters.Cycles),
                static_cast<unsigned long long>(MI.R.Counters.MetaStores));
    std::printf("  always-copy metadata:  %llu cycles\n",
                static_cast<unsigned long long>(MA.R.Counters.Cycles));
    std::printf("  inference saves %.1f%% on a memcpy-heavy kernel\n",
                100.0 * (1.0 - double(MI.R.Counters.Cycles) /
                                   double(MA.R.Counters.Cycles)));
  }

  // 3. Bound shrinking cost.
  {
    std::printf("\n-- 3. sub-object shrinking cost (§3.1) --\n");
    TablePrinter T({"benchmark", "shrink on (cycles)", "shrink off",
                    "delta %"});
    for (const auto &Name :
         {std::string("health"), std::string("em3d"), std::string("li")}) {
      const Workload *W = nullptr;
      for (const auto &Cand : benchmarkSuite())
        if (Cand.Name == Name)
          W = &Cand;
      BuildOptions On, Off;
      On.Instrument = Off.Instrument = true;
      Off.SB.ShrinkBounds = false;
      Measurement MOn = measure(mustBuild(W->Source, On));
      Measurement MOff = measure(mustBuild(W->Source, Off));
      T.addRow({Name, std::to_string(MOn.R.Counters.Cycles),
                std::to_string(MOff.R.Counters.Cycles),
                TablePrinter::fmt(overheadPct(MOn.R.Counters.Cycles,
                                              MOff.R.Counters.Cycles),
                                  2)});
    }
    T.print();
  }

  // 4. Splay-tree object-table cost (the §2.1 "5x or more" claim class).
  {
    std::printf("\n-- 4. object-table (splay) baseline overhead --\n");
    TablePrinter T({"benchmark", "objtable overhead %",
                    "softbound-full overhead %", "splay comparisons"});
    for (const auto &Name :
         {std::string("treeadd"), std::string("li"), std::string("mst")}) {
      const Workload *W = nullptr;
      for (const auto &Cand : benchmarkSuite())
        if (Cand.Name == Name)
          W = &Cand;
      BuildResult Plain = mustBuild(W->Source, BuildOptions{});
      Measurement MP = measure(Plain);

      ObjectTableChecker OT;
      RunOptions R;
      R.Checker = &OT;
      Measurement MO = measure(mustBuild(W->Source, BuildOptions{}), R);

      BuildOptions BF;
      BF.Instrument = true;
      Measurement MS = measure(mustBuild(W->Source, BF));

      T.addRow({Name,
                TablePrinter::fmt(overheadPct(MO.R.Counters.Cycles,
                                              MP.R.Counters.Cycles),
                                  1),
                TablePrinter::fmt(overheadPct(MS.R.Counters.Cycles,
                                              MP.R.Counters.Cycles),
                                  1),
                std::to_string(OT.totalComparisons())});
    }
    T.print();
  }

  // 5. Static check-optimization subsystem (opt/checks/): each sub-pass
  //    toggled independently on counted-loop-heavy kernels.
  {
    std::printf("\n-- 5. static check optimization sub-passes (opt/checks/) "
                "--\n");
    struct Knobs {
      const char *Name;
      bool Dominated, Range, Hoist;
    };
    const Knobs Configs[] = {
        {"off", false, false, false},
        {"+dominated", true, false, false},
        {"+range", false, true, false},
        {"+hoist", false, false, true},
        {"all", true, true, true},
    };
    for (const auto &Name :
         {std::string("lbm"), std::string("hmmer"), std::string("ijpeg"),
          std::string("compress")}) {
      const Workload *W = nullptr;
      for (const auto &Cand : benchmarkSuite())
        if (Cand.Name == Name)
          W = &Cand;
      if (!W) {
        std::fprintf(stderr, "workload %s missing from suite\n",
                     Name.c_str());
        return 1;
      }
      std::printf("  %s:\n", Name.c_str());
      TablePrinter T({"config", "static checks", "elim %", "dyn checks",
                      "cycles", "hoisted", "dom", "range"});
      for (const auto &K : Configs) {
        BuildOptions B;
        B.Instrument = true;
        B.CheckOpt.EliminateDominated = K.Dominated;
        B.CheckOpt.RangeSubsumption = K.Range;
        B.CheckOpt.HoistLoopChecks = K.Hoist;
        BuildResult Prog = mustBuild(W->Source, B);
        Measurement M = measure(Prog);
        const CheckOptStats &S = Prog.Stats.CheckOpt;
        T.addRow({K.Name, std::to_string(S.ChecksAfter),
                  TablePrinter::fmt(100.0 * S.eliminationRate(), 1),
                  std::to_string(M.R.Counters.Checks),
                  std::to_string(M.R.Counters.Cycles),
                  std::to_string(S.LoopChecksHoisted),
                  std::to_string(S.DominatedEliminated),
                  std::to_string(S.RangeEliminated)});
      }
      T.print();
    }
  }
  return 0;
}
