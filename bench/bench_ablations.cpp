//===- bench/bench_ablations.cpp - design-choice ablations ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out:
///   1. post-instrumentation re-optimization (redundant-check elimination,
///      §6.1) on vs off,
///   2. §5.2 memcpy pointer-free inference on vs off,
///   3. sub-object bound shrinking cost (it must be ~free),
///   4. object-table (splay) baseline cost on pointer-dense code — the
///      §2.1 claim that splay lookups are the bottleneck,
///   5. the static check-optimization subsystem (opt/checks/) with each
///      sub-pass toggled independently — expressed as pipeline-spec
///      strings over the PipelinePlan API. Covers both the counted-loop
///      kernels (hoisting territory) and the recursive/pointer-heavy
///      kernels (perimeter, bh, go) that only the inter-procedural
///      propagation reaches.
///
/// Flags:
///   --pipeline <spec>  run only the given pipeline spec (e.g.
///                      "optimize,softbound,checkopt(range,hoist)") over
///                      the counted-loop kernels and print its stats —
///                      ablation-by-string for scripts and CI smoke tests.
///   --list-passes      print the pass registry and exit.
///   --json <path>      write section 5's per-workload, per-config check
///                      counts and elision stats as JSON (uploaded as a
///                      CI artifact next to the fig2 dump).
///
//===----------------------------------------------------------------------===//

#include "baselines/ObjectTableChecker.h"
#include "bench/BenchJson.h"
#include "bench/BenchUtil.h"

#include <cstring>

using namespace softbound;
using namespace softbound::benchutil;
using namespace softbound::benchjson;

namespace {

const char *MemcpyHeavy = R"(
int main() {
  char* a = malloc(4096);
  char* b = malloc(4096);
  for (int i = 0; i < 4096; i++) a[i] = (char)(i % 100);
  for (int round = 0; round < 200; round++) {
    memcpy(b, a, 4096);
    memcpy(a, b, 4096);
  }
  long s = 0;
  for (int i = 0; i < 4096; i++) s += a[i];
  return (int)(s % 251);
}
)";

/// The counted-loop-heavy kernels --pipeline measures.
const char *const LoopKernels[] = {"lbm", "hmmer", "ijpeg", "compress"};

/// Section 5's corpus: the counted-loop kernels, the
/// recursive/pointer-heavy ones where inter-procedural propagation is the
/// only sub-pass with leverage, and the runtime-bound kernels that only
/// runtime-limit hull hoisting reaches — tsp/li (variable limits) plus
/// ijpeg/hmmer/go, whose scan-band (`lo..hi`), traceback (decreasing)
/// and stride-8 phases exercise the symbolic-init/strided shapes.
const char *const CheckOptKernels[] = {"lbm",       "hmmer", "ijpeg",
                                       "compress",  "perimeter", "bh",
                                       "go",        "tsp",   "li",
                                       "treeadd"};

/// Section 5's configurations (cumulative and isolated sub-pass sets).
/// "no-rt" is the pre-runtime-limit default and "no-partition" the
/// pre-partition one — the baselines those sub-passes' acceptance
/// numbers are measured against. "+partition" isolates partitioning:
/// without the other sub-passes nothing is fully-proven, so any win it
/// shows is pure boundary reconstruction (null-init store elision).
struct SpecConfig {
  const char *Name;
  const char *Spec;
};
const SpecConfig SpecConfigs[] = {
    {"off", "optimize,softbound,checkopt(none)"},
    {"+dominated", "optimize,softbound,checkopt(redundant)"},
    {"+range", "optimize,softbound,checkopt(range)"},
    {"+hoist", "optimize,softbound,checkopt(hoist)"},
    {"+runtime-limit", "optimize,softbound,checkopt(hoist,runtime-limit)"},
    {"+interproc", "optimize,softbound,checkopt(interproc)"},
    {"+partition", "optimize,softbound,checkopt(partition)"},
    {"intra", "optimize,softbound,checkopt(redundant,range,hoist)"},
    {"no-rt", "optimize,softbound,checkopt(redundant,range,hoist,interproc)"},
    {"no-partition",
     "optimize,softbound,checkopt(redundant,range,hoist,runtime-limit,"
     "interproc)"},
    {"all", "optimize,softbound,checkopt"},
};

/// Static spatial checks left in the built module — counted directly so
/// the --pipeline table is right even for specs without a checkopt pass
/// (whose CheckOptStats would be empty).
unsigned staticChecks(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB)
        if (isa<SpatialCheckInst>(I.get()))
          ++N;
  return N;
}

/// Runs \p Spec over the loop kernels, printing static and dynamic check
/// stats per workload. Returns a process exit code.
int runPipelineSpec(const std::string &Spec) {
  PipelinePlan Probe;
  std::string Err;
  if (!Probe.appendSpec(Spec, &Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 2;
  }
  std::printf("=== pipeline: %s ===\n", Probe.spec().c_str());
  TablePrinter T({"benchmark", "static checks", "elim %", "dyn checks",
                  "cycles", "build ms"});
  for (const auto &Name : LoopKernels) {
    const Workload &W = mustFindWorkload(Name);
    BuildResult Prog = mustBuild(W.Source, Spec);
    Measurement M = measure(Prog);
    // elim % stays a checkopt statistic: 0.0 when the spec ran no
    // check-optimization pass.
    T.addRow({Name, std::to_string(staticChecks(*Prog.M)),
              TablePrinter::fmt(100.0 * Prog.Pipeline.CheckOpt.eliminationRate(),
                                1),
              std::to_string(M.R.Counters.Checks),
              std::to_string(M.R.Counters.Cycles),
              TablePrinter::fmt(Prog.Pipeline.totalMillis(), 2)});
  }
  T.print();
  return 0;
}

/// Runs section 5's matrix (kernels x spec configs) once, printing the
/// tables; when \p JsonPath is non-empty also dumps the numbers for the
/// CI artifact.
void runCheckOptAblation(const std::string &JsonPath) {
  std::printf("\n-- 5. static check optimization sub-passes (opt/checks/) "
              "--\n");
  JsonWriter W;
  W.beginObject();
  W.kv("schema", "softbound-bench-ablations-v1");
  W.key("checkopt");
  W.beginObject();
  for (const auto &Name : CheckOptKernels) {
    const Workload &Wl = mustFindWorkload(Name);
    std::printf("  %s:\n", Name);
    TablePrinter T({"config", "static checks", "elim %", "dyn checks",
                    "meta ops", "cycles", "hoisted", "rt-hulls", "dom",
                    "range", "interproc", "proven"});
    W.key(Name);
    W.beginObject();
    for (const auto &K : SpecConfigs) {
      BuildResult Prog = mustBuild(Wl.Source, K.Spec);
      Measurement M = measure(Prog);
      const CheckOptStats &S = Prog.Pipeline.CheckOpt;
      T.addRow({K.Name, std::to_string(S.ChecksAfter),
                TablePrinter::fmt(100.0 * S.eliminationRate(), 1),
                std::to_string(M.R.Counters.Checks),
                std::to_string(M.R.Counters.MetaLoads +
                               M.R.Counters.MetaStores),
                std::to_string(M.R.Counters.Cycles),
                std::to_string(S.LoopChecksHoisted),
                std::to_string(S.RuntimeHullChecks),
                std::to_string(S.DominatedEliminated),
                std::to_string(S.RangeEliminated),
                std::to_string(S.InterProcChecksElided),
                std::to_string(S.PartitionProven)});
      W.key(K.Name);
      W.beginObject();
      W.kv("spec", K.Spec);
      W.kv("static_checks", S.ChecksAfter);
      W.kv("dyn_checks", M.R.Counters.Checks);
      W.kv("meta_ops", M.R.Counters.MetaLoads + M.R.Counters.MetaStores);
      W.kv("cycles", M.R.Counters.Cycles);
      W.kv("hoisted", S.LoopChecksHoisted);
      W.kv("runtime_hulls", S.RuntimeHullChecks);
      W.kv("runtime_fallbacks", S.RuntimeGuardedFallbacks);
      W.kv("runtime_discharged", S.RuntimeGuardsDischarged);
      W.kv("check_guards", M.R.Counters.CheckGuards);
      W.kv("dominated", S.DominatedEliminated);
      W.kv("range", S.RangeEliminated);
      W.kv("interproc", S.InterProcChecksElided);
      W.kv("interproc_callee", S.InterProcCalleeElided);
      W.kv("interproc_caller", S.InterProcCallerElided);
      W.kv("interproc_range", S.InterProcRangeElided);
      W.kv("interproc_sunk", S.InterProcSunkElided);
      W.kv("partition_proven", S.PartitionProven);
      W.kv("partition_meta_removed",
           S.PartitionMetaLoadsRemoved + S.PartitionMetaStoresRemoved);
      W.kv("build_ms", Prog.Pipeline.totalMillis());
      W.endObject();
    }
    W.endObject();
    T.print();
  }
  W.endObject();
  W.endObject();
  if (!JsonPath.empty()) {
    if (!W.writeTo(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      std::exit(1);
    }
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
}

int listPasses() {
  std::printf("registered pipeline passes:\n");
  for (const auto &Name : PassRegistry::global().names()) {
    const PassRegistry::Entry *E = PassRegistry::global().lookup(Name);
    std::printf("  %-12s %s\n", Name.c_str(), E->Description.c_str());
    if (!E->Knobs.empty()) {
      std::printf("  %-12s knobs:", "");
      for (const auto &K : E->Knobs)
        std::printf(" %s", K.c_str());
      std::printf("\n");
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath, PipelineSpec;
  bool ListPasses = false;
  for (int I = 1; I < argc; ++I) {
    auto NeedArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--list-passes") == 0)
      ListPasses = true;
    else if (std::strcmp(argv[I], "--pipeline") == 0)
      PipelineSpec = NeedArg("--pipeline");
    else if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = NeedArg("--json");
    else {
      std::fprintf(stderr, "unknown flag '%s' (try --pipeline <spec>, "
                           "--json <path>, or --list-passes)\n",
                   argv[I]);
      return 2;
    }
  }
  if (ListPasses)
    return listPasses();
  if (!PipelineSpec.empty()) {
    if (!JsonPath.empty()) {
      std::fprintf(stderr,
                   "--json applies to the full ablation run, not "
                   "--pipeline; drop one of the flags\n");
      return 2;
    }
    return runPipelineSpec(PipelineSpec);
  }

  std::printf("=== Ablations ===\n\n");

  // 1. Re-optimization after instrumentation.
  {
    std::printf("-- 1. post-instrumentation check elimination (§6.1) --\n");
    TablePrinter T({"benchmark", "cycles w/ reopt", "cycles w/o",
                    "checks dedup'd", "saving %"});
    for (const auto &Name : {std::string("go"), std::string("compress"),
                             std::string("treeadd"), std::string("em3d")}) {
      const Workload &W = mustFindWorkload(Name);
      BuildResult POn = mustBuild(W.Source, "optimize,softbound,checkopt");
      BuildResult POff =
          mustBuild(W.Source, "optimize,softbound(no-reopt),checkopt");
      Measurement MOn = measure(POn);
      Measurement MOff = measure(POff);
      T.addRow({Name, std::to_string(MOn.R.Counters.Cycles),
                std::to_string(MOff.R.Counters.Cycles),
                std::to_string(POn.Pipeline.SB.ChecksEliminated),
                TablePrinter::fmt(100.0 * (1.0 -
                                           double(MOn.R.Counters.Cycles) /
                                               double(MOff.R.Counters.Cycles)),
                                  2)});
    }
    T.print();
  }

  // 2. memcpy metadata inference.
  {
    std::printf("\n-- 2. memcpy pointer-free inference (§5.2) --\n");
    Measurement MI =
        measure(mustBuild(MemcpyHeavy, "optimize,softbound,checkopt"));
    Measurement MA = measure(
        mustBuild(MemcpyHeavy, "optimize,softbound(no-memcpy-infer),checkopt"));
    std::printf("  inferred pointer-free: %llu cycles, %llu meta updates\n",
                static_cast<unsigned long long>(MI.R.Counters.Cycles),
                static_cast<unsigned long long>(MI.R.Counters.MetaStores));
    std::printf("  always-copy metadata:  %llu cycles\n",
                static_cast<unsigned long long>(MA.R.Counters.Cycles));
    std::printf("  inference saves %.1f%% on a memcpy-heavy kernel\n",
                100.0 * (1.0 - double(MI.R.Counters.Cycles) /
                                   double(MA.R.Counters.Cycles)));
  }

  // 3. Bound shrinking cost.
  {
    std::printf("\n-- 3. sub-object shrinking cost (§3.1) --\n");
    TablePrinter T({"benchmark", "shrink on (cycles)", "shrink off",
                    "delta %"});
    for (const auto &Name :
         {std::string("health"), std::string("em3d"), std::string("li")}) {
      const Workload &W = mustFindWorkload(Name);
      Measurement MOn =
          measure(mustBuild(W.Source, "optimize,softbound,checkopt"));
      Measurement MOff = measure(
          mustBuild(W.Source, "optimize,softbound(no-shrink),checkopt"));
      T.addRow({Name, std::to_string(MOn.R.Counters.Cycles),
                std::to_string(MOff.R.Counters.Cycles),
                TablePrinter::fmt(overheadPct(MOn.R.Counters.Cycles,
                                              MOff.R.Counters.Cycles),
                                  2)});
    }
    T.print();
  }

  // 4. Splay-tree object-table cost (the §2.1 "5x or more" claim class).
  {
    std::printf("\n-- 4. object-table (splay) baseline overhead --\n");
    TablePrinter T({"benchmark", "objtable overhead %",
                    "softbound-full overhead %", "splay comparisons"});
    for (const auto &Name :
         {std::string("treeadd"), std::string("li"), std::string("mst")}) {
      const Workload &W = mustFindWorkload(Name);
      Measurement MP = measure(mustBuild(W.Source, "optimize"));

      ObjectTableChecker OT;
      RunOptions R;
      R.Checker = &OT;
      Measurement MO = measure(mustBuild(W.Source, "optimize"), R);

      Measurement MS =
          measure(mustBuild(W.Source, "optimize,softbound,checkopt"));

      T.addRow({Name,
                TablePrinter::fmt(overheadPct(MO.R.Counters.Cycles,
                                              MP.R.Counters.Cycles),
                                  1),
                TablePrinter::fmt(overheadPct(MS.R.Counters.Cycles,
                                              MP.R.Counters.Cycles),
                                  1),
                std::to_string(OT.totalComparisons())});
    }
    T.print();
  }

  // 5. Static check-optimization subsystem (opt/checks/): each sub-pass
  //    toggled independently, as pipeline-spec strings, over both the
  //    counted-loop and the recursive kernels.
  runCheckOptAblation(JsonPath);
  return 0;
}
