//===- bench/BenchUtil.h - shared bench harness helpers ---------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure regeneration binaries: run a
/// workload under a named configuration and report deterministic simulated
/// cycles plus wall time.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_BENCH_BENCHUTIL_H
#define SOFTBOUND_BENCH_BENCHUTIL_H

#include "driver/Pipeline.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace softbound {
namespace benchutil {

/// One measured execution.
struct Measurement {
  RunResult R;
  double WallSeconds = 0;
};

/// Builds (once) and runs a program, timing the run.
inline Measurement measure(const BuildResult &Prog,
                           const RunOptions &Opts = {}) {
  Measurement M;
  auto T0 = std::chrono::steady_clock::now();
  M.R = runSession(Prog, Opts).Combined;
  auto T1 = std::chrono::steady_clock::now();
  M.WallSeconds = std::chrono::duration<double>(T1 - T0).count();
  return M;
}

/// Percent overhead of Cycles over a baseline cycle count.
inline double overheadPct(uint64_t Instrumented, uint64_t Baseline) {
  if (Baseline == 0)
    return 0;
  return (static_cast<double>(Instrumented) /
              static_cast<double>(Baseline) -
          1.0) *
         100.0;
}

/// Runs a PipelinePlan to completion; aborts the process with a message on
/// build failure (benches must not run on broken inputs).
inline BuildResult mustBuild(const PipelinePlan &Plan) {
  BuildResult Prog = Plan.build();
  if (!Prog.ok()) {
    std::fprintf(stderr, "bench build failed:\n%s\n",
                 Prog.errorText().c_str());
    std::abort();
  }
  return Prog;
}

/// Legacy-options overload.
inline BuildResult mustBuild(const std::string &Src, const BuildOptions &B) {
  return mustBuild(planFromBuildOptions(Src, B));
}

/// Builds \p Src through a textual pipeline spec; aborts on a malformed
/// spec or build failure.
inline BuildResult mustBuild(const std::string &Src, const std::string &Spec) {
  PipelinePlan Plan;
  Plan.frontend(Src);
  std::string Err;
  if (!Plan.appendSpec(Spec, &Err)) {
    std::fprintf(stderr, "bad pipeline spec '%s': %s\n", Spec.c_str(),
                 Err.c_str());
    std::abort();
  }
  return mustBuild(Plan);
}

/// Finds a named workload in the benchmark suite; aborts if missing.
inline const Workload &mustFindWorkload(const std::string &Name) {
  for (const auto &W : benchmarkSuite())
    if (W.Name == Name)
      return W;
  std::fprintf(stderr, "workload %s missing from suite\n", Name.c_str());
  std::abort();
}

} // namespace benchutil
} // namespace softbound

#endif // SOFTBOUND_BENCH_BENCHUTIL_H
