//===- bench/bench_sec64_servers.cpp - §6.4 servers under traffic -----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §6.4 compatibility study under sustained traffic. Each server
/// (nhttpd-style HTTP, tinyftp-style FTP) is driven through a seeded
/// TrafficSchedule — by default 1000 requests of connection churn, mixed
/// request sizes, and adversarial payloads arriving as ordinary traffic —
/// with every request bracketed by sb_guard/sb_request_end so a contained
/// violation never poisons the requests after it (docs/runtime.md
/// "Traffic tier").
///
/// Gated claims (exit code):
///   * zero missed detections: every adversarial request traps, on every
///     lane, under both full and store-only checking;
///   * zero false traps: benign requests never trap, and an all-benign
///     schedule produces output identical to the uninstrumented run
///     (1-lane gate — lanes share globals, so N-lane output is
///     informational);
///   * per-request costs hold the committed baseline (--baseline): the
///     traffic section of bench/baselines/check_counts.json pins the
///     deterministic 1-lane totals (checks, metadata ops, sim cost) at a
///     pinned request count, which gates checks/request and
///     sim-cost/request exactly.
///
/// Flags:
///   --requests <N>        schedule length per server (default 1000).
///   --seed <S>            schedule seed (default 64).
///   --lanes <N>           N-lane VM session over one shared heap +
///                         facility; detection gates hold per lane.
///   --shards <N>          facility shard count (power of two).
///   --lockfree            LockFreeRead facility (seqlock read path).
///   --json <path>         machine-readable results, including the
///                         per-request metric keys (checks_per_request,
///                         meta_ops_per_request, sim_cost_per_request)
///                         and the non-gated contention_* group.
///   --baseline <path>     gate traffic totals against the committed
///                         baseline (1-lane only, like fig2's gate).
///   --write-baseline <path>
///                         refresh the baseline's "traffic" section in
///                         place (every other section, including fig2's
///                         workloads, is carried through untouched).
///
/// Multi-lane runs report exit-code divergence instead of gating on it:
/// the drivers count handled/trapped requests in shared globals, so lane
/// exit codes legitimately diverge. The report names the first request
/// index where any lane's trap outcome differs from lane 0's and each
/// lane's handled-request count, so a detection divergence is
/// distinguishable from mere shared-counter racing.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/BenchUtil.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "workloads/Traffic.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace softbound;
using namespace softbound::benchutil;
using benchjson::JsonValue;
using benchjson::JsonWriter;
using benchjson::parseJsonFile;
using benchjson::writeJsonValue;

namespace {

/// One instrumented mode (full or store-only) of one server's traffic run.
struct ModeNumbers {
  TrafficReport Rep;          ///< Lane-summed per-request metrics.
  MetadataStats Meta;         ///< Facility stats (contention_* keys).
  double OverheadPct = 0;     ///< Cycles vs the uninstrumented run.
  bool DetectOk = true;       ///< Per-lane: missed == 0, no false traps.
  bool ExitOk = true;         ///< Exit 0 (gated at 1 lane only).
  /// Divergence report (Lanes > 1): first request index where a lane's
  /// trap outcome differs from lane 0's (-1: streams agree), per-lane
  /// handled-request counts, per-lane exit codes.
  long DivergedAt = -1;
  std::vector<uint64_t> LaneHandled;
  std::vector<int64_t> LaneExits;
};

/// Everything measured for one server.
struct ServerNumbers {
  std::string Name; ///< Schedule kind name ("http" / "ftp").
  TrafficSchedule Sched;
  uint64_t PlainCycles = 0;
  bool PlainOk = false;
  ModeNumbers Full, Store;
  bool BenignIdentical = false;
  bool IdentityGated = true; ///< False for multi-lane runs (racy globals).
};

/// Folds one session's lane streams into lane-summed metrics plus the
/// per-lane detection gates and the divergence report.
ModeNumbers foldSession(const SessionResult &S, const TrafficSchedule &Sched,
                        uint64_t PlainCycles, unsigned Lanes) {
  ModeNumbers M;
  M.Meta = S.Meta;
  ShadowSpaceMetadata Costs;
  for (const RunResult &L : S.PerLane) {
    TrafficReport R = TrafficReport::fromSamples(
        Sched.Requests, L.Requests, Costs.lookupCost(), Costs.updateCost());
    M.DetectOk &= R.Missed == 0 && R.FalseTraps == 0 &&
                  R.Trapped == Sched.adversarialCount() &&
                  R.Requests == Sched.Requests.size();
    M.Rep.Requests = R.Requests; // Schedule length, not lane-summed.
    M.Rep.Adversarial = R.Adversarial;
    M.Rep.Trapped += R.Trapped;
    M.Rep.Missed += R.Missed;
    M.Rep.FalseTraps += R.FalseTraps;
    M.Rep.Checks += R.Checks;
    M.Rep.MetaOps += R.MetaOps;
    M.Rep.GuardEvals += R.GuardEvals;
    M.Rep.Cycles += R.Cycles;
    M.Rep.SimCost += R.SimCost;
    M.LaneHandled.push_back(R.Requests - R.Trapped);
    M.LaneExits.push_back(L.ExitCode);
  }
  M.ExitOk = Lanes > 1 || (S.Combined.ok() && S.Combined.ExitCode == 0);
  // Divergence scan: compare every lane's per-request trap kinds against
  // lane 0's (sample 0 is the prologue window; requests start at 1).
  const std::vector<RequestSample> &L0 = S.PerLane.front().Requests;
  for (size_t LI = 1; LI < S.PerLane.size() && M.DivergedAt < 0; ++LI) {
    const std::vector<RequestSample> &LN = S.PerLane[LI].Requests;
    size_t N = std::min(L0.size(), LN.size());
    for (size_t RI = 1; RI < N; ++RI)
      if (L0[RI].Trap != LN[RI].Trap) {
        M.DivergedAt = static_cast<long>(RI - 1); // Request index.
        break;
      }
    if (M.DivergedAt < 0 && L0.size() != LN.size())
      M.DivergedAt = static_cast<long>(N > 0 ? N - 1 : 0);
  }
  M.OverheadPct = overheadPct(S.Combined.Counters.Cycles, PlainCycles);
  return M;
}

/// Emits the baseline "traffic" section: schedule shape plus the gated
/// deterministic 1-lane totals per server.
void emitTrafficSection(JsonWriter &W, const std::vector<ServerNumbers> &All,
                        unsigned Requests, uint64_t Seed) {
  W.beginObject();
  W.kv("requests", static_cast<uint64_t>(Requests));
  W.kv("seed", Seed);
  for (const auto &S : All) {
    W.key(S.Name);
    W.beginObject();
    W.kv("adversarial", static_cast<uint64_t>(S.Sched.adversarialCount()));
    W.kv("checks_full", S.Full.Rep.Checks);
    W.kv("checks_store", S.Store.Rep.Checks);
    W.kv("meta_ops_full", S.Full.Rep.MetaOps);
    W.kv("meta_ops_store", S.Store.Rep.MetaOps);
    W.kv("sim_cost_full", S.Full.Rep.SimCost);
    W.kv("sim_cost_store", S.Store.Rep.SimCost);
    W.endObject();
  }
  W.endObject();
}

/// Rewrites the baseline's "traffic" section in place. The file is shared
/// with bench_fig2_overhead (which owns schema/pipeline/workloads), so it
/// must already exist; every section this bench does not own is carried
/// through via writeJsonValue in document order.
void writeTrafficBaseline(const std::vector<ServerNumbers> &All,
                          unsigned Requests, uint64_t Seed,
                          const std::string &Path) {
  JsonValue Old;
  std::string Err;
  if (!parseJsonFile(Path, Old, Err) || !Old.isObject()) {
    std::fprintf(stderr,
                 "%s: cannot refresh traffic section (%s); the baseline "
                 "file is shared — create it with bench_fig2_overhead "
                 "--write-baseline first\n",
                 Path.c_str(), Err.empty() ? "not an object" : Err.c_str());
    std::exit(1);
  }
  JsonWriter W;
  W.beginObject();
  bool Replaced = false;
  for (const std::string &Key : Old.ObjOrder) {
    W.key(Key);
    if (Key == "traffic") {
      emitTrafficSection(W, All, Requests, Seed);
      Replaced = true;
    } else {
      writeJsonValue(W, Old.Obj.at(Key));
    }
  }
  if (!Replaced) {
    W.key("traffic");
    emitTrafficSection(W, All, Requests, Seed);
  }
  W.endObject();
  if (!W.writeTo(Path)) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote traffic baseline section in %s\n", Path.c_str());
}

/// Gates this run's deterministic traffic totals against the committed
/// baseline. Returns the number of regressions. The totals are taken at
/// the baseline's pinned request count and seed, so a total gate is
/// exactly a per-request gate; a schedule-shape mismatch is an error, not
/// a silent skip.
int compareTrafficBaseline(const std::vector<ServerNumbers> &All,
                           unsigned Requests, uint64_t Seed,
                           const std::string &Path) {
  JsonValue Doc;
  std::string Err;
  if (!parseJsonFile(Path, Doc, Err)) {
    std::fprintf(stderr, "baseline: %s\n", Err.c_str());
    return 1;
  }
  const JsonValue *T = Doc.get("traffic");
  if (!T || !T->isObject()) {
    std::fprintf(stderr,
                 "baseline %s: missing \"traffic\" section (refresh with "
                 "--write-baseline)\n",
                 Path.c_str());
    return 1;
  }
  const JsonValue *BReq = T->get("requests");
  const JsonValue *BSeed = T->get("seed");
  if (!BReq || !BReq->isNumber() || !BSeed || !BSeed->isNumber() ||
      BReq->asInt() != static_cast<int64_t>(Requests) ||
      BSeed->asInt() != static_cast<int64_t>(Seed)) {
    std::fprintf(stderr,
                 "baseline %s: traffic schedule shape mismatch (baseline "
                 "requests=%lld seed=%lld, run requests=%u seed=%llu); pass "
                 "matching --requests/--seed or refresh with "
                 "--write-baseline\n",
                 Path.c_str(),
                 BReq && BReq->isNumber()
                     ? static_cast<long long>(BReq->asInt())
                     : -1LL,
                 BSeed && BSeed->isNumber()
                     ? static_cast<long long>(BSeed->asInt())
                     : -1LL,
                 Requests, static_cast<unsigned long long>(Seed));
    return 1;
  }
  int Regressions = 0;
  std::printf("\n=== traffic bench-regression gate (baseline: %s) ===\n",
              Path.c_str());
  for (const auto &S : All) {
    const JsonValue *Entry = T->get(S.Name);
    if (!Entry || !Entry->isObject()) {
      std::printf("  %-6s UNGATED: not in baseline traffic section "
                  "(refresh with --write-baseline to gate it)\n",
                  S.Name.c_str());
      ++Regressions;
      continue;
    }
    const JsonValue *Adv = Entry->get("adversarial");
    if (Adv && Adv->isNumber() &&
        Adv->asInt() != static_cast<int64_t>(S.Sched.adversarialCount())) {
      std::printf("  %-6s SCHEDULE DRIFT: %u adversarial requests vs "
                  "baseline %lld (generator changed under a pinned seed)\n",
                  S.Name.c_str(), S.Sched.adversarialCount(),
                  static_cast<long long>(Adv->asInt()));
      ++Regressions;
    }
    struct {
      const char *Key;
      uint64_t Now;
    } Rows[] = {{"checks_full", S.Full.Rep.Checks},
                {"checks_store", S.Store.Rep.Checks},
                {"meta_ops_full", S.Full.Rep.MetaOps},
                {"meta_ops_store", S.Store.Rep.MetaOps},
                {"sim_cost_full", S.Full.Rep.SimCost},
                {"sim_cost_store", S.Store.Rep.SimCost}};
    for (const auto &Row : Rows) {
      const JsonValue *Base = Entry->get(Row.Key);
      if (!Base || !Base->isNumber())
        continue; // Not gated in this baseline.
      uint64_t Want = static_cast<uint64_t>(Base->asInt());
      if (Row.Now > Want) {
        std::printf("  %-6s %-14s REGRESSED: %llu > baseline %llu "
                    "(per-request: %.2f > %.2f)\n",
                    S.Name.c_str(), Row.Key,
                    static_cast<unsigned long long>(Row.Now),
                    static_cast<unsigned long long>(Want),
                    static_cast<double>(Row.Now) / Requests,
                    static_cast<double>(Want) / Requests);
        ++Regressions;
      } else if (Row.Now < Want) {
        std::printf("  %-6s %-14s improved: %llu < baseline %llu (refresh "
                    "the baseline to lock in)\n",
                    S.Name.c_str(), Row.Key,
                    static_cast<unsigned long long>(Row.Now),
                    static_cast<unsigned long long>(Want));
      }
    }
  }
  if (Regressions == 0)
    std::printf("  OK: no server regressed its per-request check count or "
                "simulated cost\n");
  return Regressions;
}

/// Prints the multi-lane divergence report for one mode (satellite of the
/// traffic tier: a lane-exit divergence must name the first diverging
/// request and each lane's handled count, so shared-counter racing is
/// distinguishable from a detection difference).
void printDivergence(const std::string &Server, const char *Mode,
                     const ModeNumbers &M) {
  bool ExitsDiverge = false;
  for (int64_t E : M.LaneExits)
    ExitsDiverge |= E != M.LaneExits.front();
  if (!ExitsDiverge && M.DivergedAt < 0)
    return;
  std::printf("warning: %s (%s) lanes diverged: ", Server.c_str(), Mode);
  if (M.DivergedAt >= 0)
    std::printf("first diverging request index %ld; ", M.DivergedAt);
  else
    std::printf("trap streams agree (shared-counter exit racing only); ");
  std::printf("per-lane handled requests:");
  for (uint64_t H : M.LaneHandled)
    std::printf(" %llu", static_cast<unsigned long long>(H));
  std::printf("; per-lane exit codes:");
  for (int64_t E : M.LaneExits)
    std::printf(" %lld", static_cast<long long>(E));
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  unsigned Lanes = 1, Shards = 1, Requests = 1000;
  uint64_t Seed = 64;
  bool LockFree = false;
  std::string JsonPath, BaselinePath, WriteBaselinePath;
  for (int I = 1; I < argc; ++I) {
    auto NeedArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--lanes") == 0)
      Lanes = static_cast<unsigned>(std::atoi(NeedArg("--lanes")));
    else if (std::strcmp(argv[I], "--shards") == 0)
      Shards = static_cast<unsigned>(std::atoi(NeedArg("--shards")));
    else if (std::strcmp(argv[I], "--requests") == 0)
      Requests = static_cast<unsigned>(std::atoi(NeedArg("--requests")));
    else if (std::strcmp(argv[I], "--seed") == 0)
      Seed = std::strtoull(NeedArg("--seed"), nullptr, 10);
    else if (std::strcmp(argv[I], "--lockfree") == 0)
      LockFree = true;
    else if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = NeedArg("--json");
    else if (std::strcmp(argv[I], "--baseline") == 0)
      BaselinePath = NeedArg("--baseline");
    else if (std::strcmp(argv[I], "--write-baseline") == 0)
      WriteBaselinePath = NeedArg("--write-baseline");
    else {
      std::fprintf(stderr,
                   "unknown flag '%s' (flags: --requests <N>, --seed <S>, "
                   "--lanes <N>, --shards <N>, --lockfree, --json <path>, "
                   "--baseline <path>, --write-baseline <path>)\n",
                   argv[I]);
      return 2;
    }
  }
  if (Lanes == 0 || Shards == 0 || Requests == 0) {
    std::fprintf(stderr, "--lanes/--shards/--requests require a positive "
                         "count\n");
    return 2;
  }
  if ((!BaselinePath.empty() || !WriteBaselinePath.empty()) && Lanes != 1) {
    // Only 1-lane totals are deterministic (lane scheduling perturbs
    // nothing, but shared-global trip counts in the FTP handler do).
    std::fprintf(stderr,
                 "--baseline/--write-baseline require --lanes 1 (the gated "
                 "totals are the deterministic single-lane ones)\n");
    return 2;
  }

  std::printf("=== §6.4 servers under sustained traffic ===\n");
  std::printf("(%u requests/server, seed %llu, %u lane%s, %u facility "
              "shard%s%s)\n\n",
              Requests, static_cast<unsigned long long>(Seed), Lanes,
              Lanes == 1 ? "" : "s", Shards, Shards == 1 ? "" : "s",
              LockFree ? ", lock-free reads" : "");

  TrafficConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.Requests = Requests;
  TrafficConfig BenignCfg = Cfg;
  BenignCfg.AttackPerMille = 0;

  RunOptions R;
  R.Lanes = Lanes;
  R.FacilityShards = Shards;
  R.LockFreeReads = LockFree;

  TablePrinter T({"server", "requests", "attacks", "trapped", "missed",
                  "checks/req", "meta-ops/req", "sim-cost/req",
                  "full overhead %", "store overhead %"});

  std::vector<ServerNumbers> Results;
  bool AllOk = true;
  for (ServerKind K : {ServerKind::Http, ServerKind::Ftp}) {
    ServerNumbers S;
    S.Name = serverKindName(K);
    S.Sched = TrafficSchedule::generate(K, Cfg);
    std::string Src = S.Sched.driverSource(/*Vuln=*/true);

    // Uninstrumented cycle baseline. The attacks' overflows land in
    // adjacent buffers by construction, so the plain run is
    // deterministic and exits 0 at one lane.
    Measurement MP = measure(mustBuild(Src, BuildOptions{}), R);
    S.PlainCycles = MP.R.Counters.Cycles;
    S.PlainOk = MP.R.ok() && (Lanes > 1 || MP.R.ExitCode == 0);

    BuildOptions BF;
    BF.Instrument = true;
    SessionResult Full = runSession(planFromBuildOptions(Src, BF), R);
    S.Full = foldSession(Full, S.Sched, S.PlainCycles, Lanes);

    BuildOptions BS;
    BS.Instrument = true;
    BS.SB.Mode = CheckMode::StoreOnly;
    SessionResult Store = runSession(planFromBuildOptions(Src, BS), R);
    S.Store = foldSession(Store, S.Sched, S.PlainCycles, Lanes);

    // The §6.4 no-false-positive claim under traffic: an all-benign
    // schedule, bug compiled out, runs byte-identically under full
    // checking. Gated at one lane (lanes share the global segment).
    TrafficSchedule Benign = TrafficSchedule::generate(K, BenignCfg);
    std::string BenignSrc = Benign.driverSource(/*Vuln=*/false);
    Measurement BP = measure(mustBuild(BenignSrc, BuildOptions{}), R);
    Measurement BFull = measure(mustBuild(BenignSrc, BF), R);
    S.BenignIdentical = BFull.R.Output == BP.R.Output &&
                        (Lanes > 1 || BFull.R.ExitCode == BP.R.ExitCode);
    S.IdentityGated = Lanes == 1;

    AllOk &= S.PlainOk;
    AllOk &= S.Full.DetectOk && S.Full.ExitOk;
    AllOk &= S.Store.DetectOk && S.Store.ExitOk;
    AllOk &= S.BenignIdentical || !S.IdentityGated;

    T.addRow({S.Name, std::to_string(S.Sched.Requests.size()),
              std::to_string(S.Sched.adversarialCount()),
              std::to_string(S.Full.Rep.Trapped),
              std::to_string(S.Full.Rep.Missed),
              TablePrinter::fmt(S.Full.Rep.checksPerRequest(), 1),
              TablePrinter::fmt(S.Full.Rep.metaOpsPerRequest(), 1),
              TablePrinter::fmt(S.Full.Rep.simCostPerRequest(), 1),
              TablePrinter::fmt(S.Full.OverheadPct, 1),
              TablePrinter::fmt(S.Store.OverheadPct, 1)});
    Results.push_back(std::move(S));
  }
  T.print();
  std::printf("(trapped/missed are lane-summed full-checking outcomes; "
              "per-request costs are full-checking, all lanes)\n");

  for (const auto &S : Results) {
    if (!S.Full.DetectOk || !S.Store.DetectOk)
      std::printf("DETECTION GATE FAILED: %s missed or false-trapped "
                  "requests (full: %llu missed/%llu false, store: %llu "
                  "missed/%llu false)\n",
                  S.Name.c_str(),
                  static_cast<unsigned long long>(S.Full.Rep.Missed),
                  static_cast<unsigned long long>(S.Full.Rep.FalseTraps),
                  static_cast<unsigned long long>(S.Store.Rep.Missed),
                  static_cast<unsigned long long>(S.Store.Rep.FalseTraps));
    if (S.IdentityGated && !S.BenignIdentical)
      std::printf("IDENTITY GATE FAILED: %s benign traffic output differs "
                  "under full checking\n",
                  S.Name.c_str());
    if (Lanes > 1) {
      printDivergence(S.Name, "full", S.Full);
      printDivergence(S.Name, "store", S.Store);
    }
  }

  // The classic single-shot claim, kept from the pre-traffic bench: the
  // vulnerable query-copy variant is stopped in store-only mode.
  BuildOptions BS;
  BS.Instrument = true;
  BS.SB.Mode = CheckMode::StoreOnly;
  RunOptions RV;
  RV.Args = {1};
  RunResult V =
      runSession(planFromBuildOptions(httpServerSource(), BS), RV).Combined;
  std::printf("\nvulnerable query-copy variant under store-only checking: "
              "%s (paper: store-only stops all such attacks)\n",
              V.violationDetected() ? "stopped" : "MISSED");
  AllOk &= V.violationDetected();

  if (!JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.kv("schema", "softbound-bench-sec64-v2");
    W.kv("lanes", static_cast<uint64_t>(Lanes));
    W.kv("shards", static_cast<uint64_t>(Shards));
    W.kv("lockfree", LockFree);
    W.kv("requests", static_cast<uint64_t>(Requests));
    W.kv("seed", Seed);
    W.key("servers");
    W.beginObject();
    for (const auto &S : Results) {
      W.key(S.Name);
      W.beginObject();
      W.kv("requests", static_cast<uint64_t>(S.Sched.Requests.size()));
      W.kv("adversarial", static_cast<uint64_t>(S.Sched.adversarialCount()));
      W.kv("plain_ok", S.PlainOk);
      W.kv("full_ok", S.Full.DetectOk && S.Full.ExitOk);
      W.kv("store_ok", S.Store.DetectOk && S.Store.ExitOk);
      W.kv("trapped_full", S.Full.Rep.Trapped);
      W.kv("missed_full", S.Full.Rep.Missed);
      W.kv("false_traps_full", S.Full.Rep.FalseTraps);
      W.kv("trapped_store", S.Store.Rep.Trapped);
      W.kv("missed_store", S.Store.Rep.Missed);
      W.kv("false_traps_store", S.Store.Rep.FalseTraps);
      W.kv("benign_output_identical", S.BenignIdentical);
      W.kv("benign_identity_gated", S.IdentityGated);
      W.kv("full_overhead_pct", S.Full.OverheadPct);
      W.kv("store_overhead_pct", S.Store.OverheadPct);
      // Gated totals (1-lane) and their per-request projections.
      W.kv("checks_full", S.Full.Rep.Checks);
      W.kv("checks_store", S.Store.Rep.Checks);
      W.kv("meta_ops_full", S.Full.Rep.MetaOps);
      W.kv("meta_ops_store", S.Store.Rep.MetaOps);
      W.kv("sim_cost_full", S.Full.Rep.SimCost);
      W.kv("sim_cost_store", S.Store.Rep.SimCost);
      W.kv("checks_per_request", S.Full.Rep.checksPerRequest());
      W.kv("meta_ops_per_request", S.Full.Rep.metaOpsPerRequest());
      W.kv("sim_cost_per_request", S.Full.Rep.simCostPerRequest());
      W.kv("checks_per_request_store", S.Store.Rep.checksPerRequest());
      W.kv("meta_ops_per_request_store", S.Store.Rep.metaOpsPerRequest());
      W.kv("sim_cost_per_request_store", S.Store.Rep.simCostPerRequest());
      // Divergence report (single-lane runs: one entry, never diverged).
      W.kv("diverged_request_index", static_cast<int64_t>(S.Full.DivergedAt));
      W.key("lane_handled_requests");
      W.beginArray();
      for (uint64_t H : S.Full.LaneHandled)
        W.value(H);
      W.endArray();
      W.key("lane_exit_codes");
      W.beginArray();
      for (int64_t E : S.Full.LaneExits)
        W.value(E);
      W.endArray();
      // Non-gated contention group (full-checking run's facility).
      W.kv("contention_lock_acquires", S.Full.Meta.LockAcquires);
      W.kv("contention_lock_contended", S.Full.Meta.LockContended);
      W.kv("contention_seqlock_reads", S.Full.Meta.SeqlockReads);
      W.kv("contention_seqlock_retries", S.Full.Meta.SeqlockRetries);
      W.kv("contention_sim_cost", S.Full.Meta.contentionSimCost());
      W.endObject();
    }
    W.endObject();
    W.kv("vulnerable_variant_stopped", V.violationDetected());
    W.endObject();
    if (!W.writeTo(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  if (!WriteBaselinePath.empty())
    writeTrafficBaseline(Results, Requests, Seed, WriteBaselinePath);
  int Regressions = BaselinePath.empty() ? 0
                                         : compareTrafficBaseline(
                                               Results, Requests, Seed,
                                               BaselinePath);

  return AllOk && Regressions == 0 ? 0 : 1;
}
