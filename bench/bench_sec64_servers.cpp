//===- bench/bench_sec64_servers.cpp - §6.4 case studies --------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §6.4 compatibility study: both servers transform with
/// no source changes, produce identical output under full checking (no
/// false positives), and the classic unbounded-copy vulnerability is
/// stopped in store-only (production) mode.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace softbound;
using namespace softbound::benchutil;

int main() {
  std::printf("=== §6.4: source-compatibility case studies ===\n\n");
  TablePrinter T({"server", "sessions", "plain ok", "full ok",
                  "output identical", "full overhead %", "store overhead %"});

  struct Case {
    const char *Name;
    std::string Src;
    std::vector<int64_t> Args;
  } Cases[] = {
      {"nhttpd-like", httpServerSource(), {0}},
      {"tinyftp-like", ftpServerSource(), {}},
  };

  bool AllOk = true;
  for (auto &C : Cases) {
    RunOptions R;
    R.Args = C.Args;
    BuildResult Plain = mustBuild(C.Src, BuildOptions{});
    Measurement MP = measure(Plain, R);

    BuildOptions BF;
    BF.Instrument = true;
    Measurement MF = measure(mustBuild(C.Src, BF), R);

    BuildOptions BS;
    BS.Instrument = true;
    BS.SB.Mode = CheckMode::StoreOnly;
    Measurement MS = measure(mustBuild(C.Src, BS), R);

    bool Identical =
        MF.R.Output == MP.R.Output && MF.R.ExitCode == MP.R.ExitCode;
    AllOk &= MP.R.ok() && MF.R.ok() && Identical;
    T.addRow({C.Name, C.Name[0] == 'n' ? "20x6 requests" : "15x10 commands",
              MP.R.ok() ? "yes" : "NO", MF.R.ok() ? "yes" : "NO",
              Identical ? "yes" : "NO",
              TablePrinter::fmt(
                  overheadPct(MF.R.Counters.Cycles, MP.R.Counters.Cycles), 1),
              TablePrinter::fmt(
                  overheadPct(MS.R.Counters.Cycles, MP.R.Counters.Cycles),
                  1)});
  }
  T.print();

  // The vulnerability variant of the HTTP server.
  BuildOptions BS;
  BS.Instrument = true;
  BS.SB.Mode = CheckMode::StoreOnly;
  RunOptions RV;
  RV.Args = {1};
  RunResult V = compileAndRun(httpServerSource(), BS, RV);
  std::printf("\nvulnerable query-copy variant under store-only checking: "
              "%s (paper: store-only stops all such attacks)\n",
              V.violationDetected() ? "stopped" : "MISSED");
  return AllOk && V.violationDetected() ? 0 : 1;
}
