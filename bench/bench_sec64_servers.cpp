//===- bench/bench_sec64_servers.cpp - §6.4 case studies --------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §6.4 compatibility study: both servers transform with
/// no source changes, produce identical output under full checking (no
/// false positives), and the classic unbounded-copy vulnerability is
/// stopped in store-only (production) mode.
///
/// Flags:
///   --lanes <N>   run each server as an N-lane VM session — N
///                 simulated server instances over one shared heap and
///                 metadata facility (docs/runtime.md). Output-identity
///                 still holds per lane because lanes are deterministic.
///   --shards <N>  shard the metadata facility over N address-stripe
///                 locks (rounded to a power of two).
///   --lockfree    run the facility in the LockFreeRead model
///                 (docs/runtime.md "Lock-free reads"): lookups acquire
///                 no locks and the contention_* keys gain seqlock
///                 read/retry counters.
///   --json <path> machine-readable results, including the non-gated
///                 `lanes`, `shards`, `lockfree`, and `contention_*`
///                 keys.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/BenchUtil.h"

#include <cstdlib>
#include <cstring>

using namespace softbound;
using namespace softbound::benchutil;

namespace {

struct CaseResult {
  std::string Name;
  bool PlainOk = false;
  bool FullOk = false;
  bool Identical = false;
  bool IdentityGated = true; ///< False for multi-lane runs (racy globals).
  double FullOverheadPct = 0;
  double StoreOverheadPct = 0;
  MetadataStats MetaStats; // Full-checking run's facility stats.
};

} // namespace

int main(int argc, char **argv) {
  unsigned Lanes = 1, Shards = 1;
  bool LockFree = false;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    auto NeedArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--lanes") == 0)
      Lanes = static_cast<unsigned>(std::atoi(NeedArg("--lanes")));
    else if (std::strcmp(argv[I], "--shards") == 0)
      Shards = static_cast<unsigned>(std::atoi(NeedArg("--shards")));
    else if (std::strcmp(argv[I], "--lockfree") == 0)
      LockFree = true;
    else if (std::strcmp(argv[I], "--json") == 0)
      JsonPath = NeedArg("--json");
    else {
      std::fprintf(stderr,
                   "unknown flag '%s' (flags: --lanes <N>, --shards <N>, "
                   "--lockfree, --json <path>)\n",
                   argv[I]);
      return 2;
    }
  }
  if (Lanes == 0 || Shards == 0) {
    std::fprintf(stderr, "--lanes/--shards require a positive count\n");
    return 2;
  }

  std::printf("=== §6.4: source-compatibility case studies ===\n");
  if (Lanes > 1 || Shards > 1 || LockFree)
    std::printf("(%u lanes, %u facility shards%s)\n", Lanes, Shards,
                LockFree ? ", lock-free reads" : "");
  std::printf("\n");
  TablePrinter T({"server", "sessions", "plain ok", "full ok",
                  "output identical", "full overhead %", "store overhead %"});

  struct Case {
    const char *Name;
    std::string Src;
    std::vector<int64_t> Args;
  } Cases[] = {
      {"nhttpd-like", httpServerSource(), {0}},
      {"tinyftp-like", ftpServerSource(), {}},
  };

  std::vector<CaseResult> Results;
  bool AllOk = true;
  for (auto &C : Cases) {
    RunOptions R;
    R.Args = C.Args;
    R.Lanes = Lanes;
    R.FacilityShards = Shards;
    R.LockFreeReads = LockFree;
    BuildResult Plain = mustBuild(C.Src, BuildOptions{});
    Measurement MP = measure(Plain, R);

    CaseResult Res;
    Res.Name = C.Name;

    BuildOptions BF;
    BF.Instrument = true;
    RunOptions RF = R;
    RF.MetaStatsOut = &Res.MetaStats;
    Measurement MF = measure(mustBuild(C.Src, BF), RF);

    BuildOptions BS;
    BS.Instrument = true;
    BS.SB.Mode = CheckMode::StoreOnly;
    Measurement MS = measure(mustBuild(C.Src, BS), R);

    Res.PlainOk = MP.R.ok();
    Res.FullOk = MF.R.ok();
    // Output identity is the §6.4 no-false-positive claim. It is only a
    // guarantee at one lane: lanes share the global segment like threads
    // in one process, and both servers keep session state (and their
    // request counter) in globals, so N-lane interleavings legitimately
    // perturb output and exit codes. Multi-lane runs report the
    // comparison for information but gate only on trap-free execution.
    Res.Identical = MF.R.Output == MP.R.Output &&
                    (Lanes > 1 || MF.R.ExitCode == MP.R.ExitCode);
    Res.IdentityGated = Lanes == 1;
    Res.FullOverheadPct =
        overheadPct(MF.R.Counters.Cycles, MP.R.Counters.Cycles);
    Res.StoreOverheadPct =
        overheadPct(MS.R.Counters.Cycles, MP.R.Counters.Cycles);
    AllOk &= Res.PlainOk && Res.FullOk && (Res.Identical || !Res.IdentityGated);
    T.addRow({C.Name, C.Name[0] == 'n' ? "20x6 requests" : "15x10 commands",
              Res.PlainOk ? "yes" : "NO", Res.FullOk ? "yes" : "NO",
              Res.Identical ? "yes" : (Res.IdentityGated ? "NO" : "no (racy)"),
              TablePrinter::fmt(Res.FullOverheadPct, 1),
              TablePrinter::fmt(Res.StoreOverheadPct, 1)});
    Results.push_back(std::move(Res));
  }
  T.print();
  if (Lanes > 1)
    std::printf("(output identity is informational at %u lanes: the servers "
                "keep session state in shared globals)\n",
                Lanes);

  // The vulnerability variant of the HTTP server.
  BuildOptions BS;
  BS.Instrument = true;
  BS.SB.Mode = CheckMode::StoreOnly;
  RunOptions RV;
  RV.Args = {1};
  RV.Lanes = Lanes;
  RV.FacilityShards = Shards;
  RV.LockFreeReads = LockFree;
  RunResult V =
      runSession(planFromBuildOptions(httpServerSource(), BS), RV).Combined;
  std::printf("\nvulnerable query-copy variant under store-only checking: "
              "%s (paper: store-only stops all such attacks)\n",
              V.violationDetected() ? "stopped" : "MISSED");

  if (!JsonPath.empty()) {
    benchjson::JsonWriter W;
    W.beginObject();
    W.kv("schema", "softbound-bench-sec64-v1");
    // Session shape. Non-gated, as are the contention_* keys below:
    // lock contention is scheduling-dependent for Lanes > 1.
    W.kv("lanes", static_cast<uint64_t>(Lanes));
    W.kv("shards", static_cast<uint64_t>(Shards));
    W.kv("lockfree", LockFree);
    W.key("servers");
    W.beginObject();
    for (const auto &Res : Results) {
      W.key(Res.Name);
      W.beginObject();
      W.kv("plain_ok", Res.PlainOk);
      W.kv("full_ok", Res.FullOk);
      W.kv("output_identical", Res.Identical);
      W.kv("output_identity_gated", Res.IdentityGated);
      W.kv("full_overhead_pct", Res.FullOverheadPct);
      W.kv("store_overhead_pct", Res.StoreOverheadPct);
      W.kv("contention_lock_acquires", Res.MetaStats.LockAcquires);
      W.kv("contention_lock_contended", Res.MetaStats.LockContended);
      W.kv("contention_seqlock_reads", Res.MetaStats.SeqlockReads);
      W.kv("contention_seqlock_retries", Res.MetaStats.SeqlockRetries);
      W.kv("contention_sim_cost", Res.MetaStats.contentionSimCost());
      W.endObject();
    }
    W.endObject();
    W.kv("vulnerable_variant_stopped", V.violationDetected());
    W.endObject();
    if (!W.writeTo(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return AllOk && V.violationDetected() ? 0 : 1;
}
